// Package cache implements the sectored, set-associative caches of the
// simulated GPU (64 KB L1 per SM, 1 MB L2 slice per chiplet; 128-byte lines
// of four 32-byte sectors, as in GPGPU-Sim/Accel-Sim).
//
// The cache is a functional model with immediate fill: an access probes the
// tag array, fills missing sectors if allocation is requested, and reports
// per-sector hits and misses. Whether to allocate is the caller's decision;
// that hook is exactly where LADM's remote-request bypassing (RONCE vs.
// RTWICE, Section III-E of the paper) plugs in — the engine passes
// allocate=false for remote-origin fills at the home node under RONCE.
package cache

import (
	"fmt"
	"math/bits"
)

// SectorMask is a bitmask over the sectors of one line (bit i = sector i).
type SectorMask uint8

// Config fixes the cache geometry.
type Config struct {
	Sets        int
	Assoc       int
	LineBytes   int
	SectorBytes int
}

// SectorsPerLine returns the number of sectors in a line.
func (c Config) SectorsPerLine() int { return c.LineBytes / c.SectorBytes }

// SizeBytes returns the total capacity.
func (c Config) SizeBytes() int { return c.Sets * c.Assoc * c.LineBytes }

type line struct {
	tag   uint64
	valid SectorMask
	dirty SectorMask
	live  bool
	lru   uint64
}

// Stats aggregates functional counters for one cache instance.
type Stats struct {
	Accesses      uint64 // Access calls
	SectorHits    uint64
	SectorMisses  uint64
	LineHits      uint64 // tag present (even if sectors missed)
	LineMisses    uint64
	Evictions     uint64
	WritebackSecs uint64 // dirty sectors written back on eviction
	Bypasses      uint64 // misses that did not allocate
}

// HitRate returns the sector hit rate in [0,1].
func (s Stats) HitRate() float64 {
	total := s.SectorHits + s.SectorMisses
	if total == 0 {
		return 0
	}
	return float64(s.SectorHits) / float64(total)
}

// Result describes the outcome of one access.
type Result struct {
	HitMask  SectorMask // sectors present before the access
	MissMask SectorMask // sectors absent before the access
	// Evicted is true when allocating displaced a live line.
	Evicted bool
	// WritebackSectors counts dirty sectors flushed by the eviction.
	WritebackSectors int
	// VictimAddr is the line address of the evicted line (valid when
	// Evicted is true); callers route its writeback to the right DRAM.
	VictimAddr uint64
	// Bypassed is true when the access missed and did not allocate.
	Bypassed bool
}

// Cache is a sectored set-associative cache with LRU replacement.
type Cache struct {
	cfg      Config
	lines    []line // sets*assoc, set-major
	tick     uint64
	stats    Stats
	resident int // valid sectors currently held (occupancy gauge)
}

// New creates a cache. It panics on inconsistent geometry: caches are
// constructed from validated arch configs, so a bad geometry is a bug.
func New(cfg Config) *Cache {
	if cfg.Sets <= 0 || cfg.Assoc <= 0 {
		panic(fmt.Sprintf("cache: bad geometry %+v", cfg))
	}
	if cfg.LineBytes <= 0 || cfg.SectorBytes <= 0 || cfg.LineBytes%cfg.SectorBytes != 0 {
		panic(fmt.Sprintf("cache: line %d not divisible into %dB sectors", cfg.LineBytes, cfg.SectorBytes))
	}
	if cfg.SectorsPerLine() > 8 {
		panic("cache: SectorMask supports at most 8 sectors per line")
	}
	return &Cache{cfg: cfg, lines: make([]line, cfg.Sets*cfg.Assoc)}
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a copy of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats clears the counters without touching contents.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// FullMask returns the mask selecting every sector of a line.
func (c *Cache) FullMask() SectorMask {
	return SectorMask(1<<c.cfg.SectorsPerLine()) - 1
}

// LineAddr returns the line-aligned address containing addr.
func (c *Cache) LineAddr(addr uint64) uint64 {
	return addr &^ uint64(c.cfg.LineBytes-1)
}

// MaskFor returns the sector mask covering [addr, addr+bytes) within addr's
// line. Spans beyond the line end are clamped to the line (callers split
// multi-line accesses).
func (c *Cache) MaskFor(addr uint64, bytes int) SectorMask {
	off := int(addr) & (c.cfg.LineBytes - 1)
	first := off / c.cfg.SectorBytes
	last := (off + bytes - 1) / c.cfg.SectorBytes
	if last >= c.cfg.SectorsPerLine() {
		last = c.cfg.SectorsPerLine() - 1
	}
	var m SectorMask
	for s := first; s <= last; s++ {
		m |= 1 << s
	}
	return m
}

// SetIndex returns the set an address maps to. Higher address bits are
// XOR-folded into the index (as real GPU caches do) so power-of-two
// strides — column walks, SoA planes — spread over sets instead of
// camping on one.
func (c *Cache) SetIndex(addr uint64) int {
	x := addr / uint64(c.cfg.LineBytes)
	n := uint64(c.cfg.Sets)
	x ^= x / n
	x ^= x / (n * n)
	return int(x % n)
}

func (c *Cache) set(lineAddr uint64) []line {
	setIdx := c.SetIndex(lineAddr)
	return c.lines[setIdx*c.cfg.Assoc : (setIdx+1)*c.cfg.Assoc]
}

// Access probes the cache for the sectors in mask of addr's line.
//
// If allocate is true, missing sectors are filled (installing the line and
// evicting the LRU victim if needed). If dirty is true, the accessed
// sectors are marked dirty (a store). With allocate=false a full miss
// leaves the cache untouched (a bypass); a partial hit still updates LRU
// and, if dirty, marks the hitting sectors.
func (c *Cache) Access(addr uint64, mask SectorMask, allocate, dirty bool) Result {
	if mask == 0 {
		panic("cache: empty sector mask")
	}
	c.tick++
	c.stats.Accesses++
	lineAddr := c.LineAddr(addr)
	set := c.set(lineAddr)

	// Probe.
	for i := range set {
		ln := &set[i]
		if ln.live && ln.tag == lineAddr {
			hit := mask & ln.valid
			miss := mask &^ ln.valid
			c.stats.LineHits++
			c.stats.SectorHits += uint64(popcount(hit))
			c.stats.SectorMisses += uint64(popcount(miss))
			ln.lru = c.tick
			if allocate {
				c.resident += popcount(miss)
				ln.valid |= mask
			}
			if dirty {
				ln.dirty |= mask & ln.valid
			}
			return Result{HitMask: hit, MissMask: miss}
		}
	}

	// Full line miss.
	c.stats.LineMisses++
	c.stats.SectorMisses += uint64(popcount(mask))
	if !allocate {
		c.stats.Bypasses++
		return Result{MissMask: mask, Bypassed: true}
	}

	// Choose victim: an invalid way if any, else LRU.
	victim := &set[0]
	for i := range set {
		ln := &set[i]
		if !ln.live {
			victim = ln
			break
		}
		if ln.lru < victim.lru {
			victim = ln
		}
	}
	res := Result{MissMask: mask}
	if victim.live {
		res.Evicted = true
		res.WritebackSectors = popcount(victim.dirty)
		res.VictimAddr = victim.tag
		c.stats.Evictions++
		c.stats.WritebackSecs += uint64(res.WritebackSectors)
		c.resident -= popcount(victim.valid)
	}
	c.resident += popcount(mask)
	victim.tag = lineAddr
	victim.valid = mask
	victim.live = true
	victim.lru = c.tick
	if dirty {
		victim.dirty = mask
	} else {
		victim.dirty = 0
	}
	return res
}

// Probe reports which of the requested sectors are present without
// modifying any state (no LRU update, no fill).
func (c *Cache) Probe(addr uint64, mask SectorMask) (hit SectorMask) {
	lineAddr := c.LineAddr(addr)
	set := c.set(lineAddr)
	for i := range set {
		ln := &set[i]
		if ln.live && ln.tag == lineAddr {
			return mask & ln.valid
		}
	}
	return 0
}

// InvalidateAll drops every line, returning the number of dirty sectors
// that a write-back cache would flush. It models the L2 coherence
// invalidation at kernel boundaries described in the paper (Section V-A).
func (c *Cache) InvalidateAll() (writebackSectors int) {
	for i := range c.lines {
		if c.lines[i].live {
			writebackSectors += popcount(c.lines[i].dirty)
		}
		c.lines[i] = line{}
	}
	c.resident = 0
	c.stats.WritebackSecs += uint64(writebackSectors)
	return writebackSectors
}

// ResidentSectors returns the number of valid sectors currently held —
// an O(1) occupancy gauge maintained across fills, evictions and
// invalidations (the telemetry sampler reads it every interval).
func (c *Cache) ResidentSectors() int { return c.resident }

// LiveLines counts currently valid lines (testing/inspection).
func (c *Cache) LiveLines() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].live {
			n++
		}
	}
	return n
}

func popcount(m SectorMask) int {
	return bits.OnesCount8(uint8(m))
}
