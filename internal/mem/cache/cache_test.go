package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func tiny() *Cache {
	// 4 sets, 2-way, 128B lines, 32B sectors: 1 KB.
	return New(Config{Sets: 4, Assoc: 2, LineBytes: 128, SectorBytes: 32})
}

func TestGeometry(t *testing.T) {
	c := tiny()
	if got := c.Config().SectorsPerLine(); got != 4 {
		t.Errorf("SectorsPerLine = %d, want 4", got)
	}
	if got := c.Config().SizeBytes(); got != 1024 {
		t.Errorf("SizeBytes = %d, want 1024", got)
	}
	if got := c.FullMask(); got != 0b1111 {
		t.Errorf("FullMask = %b, want 1111", got)
	}
}

func TestMaskFor(t *testing.T) {
	c := tiny()
	cases := []struct {
		addr  uint64
		bytes int
		want  SectorMask
	}{
		{0, 4, 0b0001},
		{0, 32, 0b0001},
		{0, 33, 0b0011},
		{32, 32, 0b0010},
		{96, 32, 0b1000},
		{0, 128, 0b1111},
		{64, 128, 0b1100}, // clamped at line end
		{1000, 4, 0b1000}, // 1000 % 128 = 104 -> sector 3
	}
	for _, tc := range cases {
		if got := c.MaskFor(tc.addr, tc.bytes); got != tc.want {
			t.Errorf("MaskFor(%d,%d) = %04b, want %04b", tc.addr, tc.bytes, got, tc.want)
		}
	}
}

func TestMissThenHit(t *testing.T) {
	c := tiny()
	r := c.Access(0, 0b0001, true, false)
	if r.HitMask != 0 || r.MissMask != 0b0001 || r.Evicted || r.Bypassed {
		t.Errorf("first access: %+v", r)
	}
	r = c.Access(0, 0b0001, true, false)
	if r.HitMask != 0b0001 || r.MissMask != 0 {
		t.Errorf("second access should hit: %+v", r)
	}
	// A different sector of the same line: line hit, sector miss.
	r = c.Access(32, 0b0010, true, false)
	if r.HitMask != 0 || r.MissMask != 0b0010 {
		t.Errorf("sector miss on resident line: %+v", r)
	}
	st := c.Stats()
	if st.LineHits != 2 || st.LineMisses != 1 {
		t.Errorf("line stats: %+v", st)
	}
	if st.SectorHits != 1 || st.SectorMisses != 2 {
		t.Errorf("sector stats: %+v", st)
	}
}

func TestBypass(t *testing.T) {
	c := tiny()
	r := c.Access(0, 0b0001, false, false)
	if !r.Bypassed {
		t.Error("miss without allocate must report bypass")
	}
	if c.LiveLines() != 0 {
		t.Error("bypassed access must not install a line")
	}
	if c.Stats().Bypasses != 1 {
		t.Errorf("bypass count = %d", c.Stats().Bypasses)
	}
	// Partial presence: allocate=false still reads the valid sectors.
	c.Access(0, 0b0001, true, false)
	r = c.Access(0, 0b0011, false, false)
	if r.HitMask != 0b0001 || r.MissMask != 0b0010 || r.Bypassed {
		t.Errorf("partial probe without allocate: %+v", r)
	}
	// The missing sector must remain missing (no fill without allocate).
	if got := c.Probe(0, 0b0010); got != 0 {
		t.Error("allocate=false filled a sector")
	}
}

// collidingLines returns n distinct line addresses mapping to address 0's
// set under the hashed index.
func collidingLines(c *Cache, n int) []uint64 {
	out := []uint64{0}
	want := c.SetIndex(0)
	for a := uint64(128); len(out) < n; a += 128 {
		if c.SetIndex(a) == want {
			out = append(out, a)
		}
	}
	return out
}

func TestSetIndexSpreadsStrides(t *testing.T) {
	// Power-of-two strides must not camp on one set: walk 64 lines at a
	// 64 KB stride and require more than one set to be touched.
	c := New(Config{Sets: 512, Assoc: 4, LineBytes: 128, SectorBytes: 32})
	seen := map[int]bool{}
	for i := 0; i < 64; i++ {
		seen[c.SetIndex(uint64(i)*65536)] = true
	}
	if len(seen) < 8 {
		t.Errorf("64 KB stride touched only %d sets", len(seen))
	}
	// And the index stays in range for arbitrary addresses.
	for a := uint64(0); a < 1<<20; a += 12345 {
		if s := c.SetIndex(a); s < 0 || s >= 512 {
			t.Fatalf("SetIndex(%d) = %d out of range", a, s)
		}
	}
}

func TestLRUEviction(t *testing.T) {
	c := tiny()
	lines := collidingLines(c, 3)
	c.Access(lines[0], 0b0001, true, false)
	c.Access(lines[1], 0b0001, true, false)
	c.Access(lines[0], 0b0001, true, false) // touch line 0: lines[1] becomes LRU
	r := c.Access(lines[2], 0b0001, true, false)
	if !r.Evicted {
		t.Error("third distinct line in 2-way set must evict")
	}
	if c.Probe(lines[1], 0b0001) != 0 {
		t.Error("LRU line should have been evicted")
	}
	if c.Probe(lines[0], 0b0001) == 0 {
		t.Error("MRU line should have survived")
	}
}

func TestDirtyWriteback(t *testing.T) {
	c := tiny()
	lines := collidingLines(c, 3)
	c.Access(lines[0], 0b0011, true, true) // store two sectors
	c.Access(lines[1], 0b0001, true, false)
	r := c.Access(lines[2], 0b0001, true, false) // evicts lines[0] (LRU)
	if !r.Evicted || r.WritebackSectors != 2 {
		t.Errorf("expected eviction with 2 writeback sectors, got %+v", r)
	}
	if r.VictimAddr != lines[0] {
		t.Errorf("victim addr = %x, want %x", r.VictimAddr, lines[0])
	}
	if c.Stats().WritebackSecs != 2 {
		t.Errorf("writeback stat = %d", c.Stats().WritebackSecs)
	}
}

func TestDirtyOnHit(t *testing.T) {
	c := tiny()
	c.Access(0, 0b0001, true, false)
	c.Access(0, 0b0001, true, true) // store hit marks dirty
	wb := c.InvalidateAll()
	if wb != 1 {
		t.Errorf("InvalidateAll flushed %d dirty sectors, want 1", wb)
	}
	if c.LiveLines() != 0 {
		t.Error("InvalidateAll left live lines")
	}
}

func TestCleanFillClearsDirty(t *testing.T) {
	c := tiny()
	lines := collidingLines(c, 3)
	c.Access(lines[0], 0b0001, true, true) // dirty
	c.Access(lines[1], 0b0001, true, true) // dirty, same set
	// Evict lines[0] by filling lines[2] clean; the victim's dirty sector
	// is flushed and the new line must be clean.
	c.Access(lines[2], 0b0001, true, false)
	if wb := c.InvalidateAll(); wb != 1 {
		t.Errorf("only one dirty sector should remain, flushed %d", wb)
	}
}

func TestHitRate(t *testing.T) {
	c := tiny()
	c.Access(0, 0b0001, true, false)
	c.Access(0, 0b0001, true, false)
	c.Access(0, 0b0001, true, false)
	if hr := c.Stats().HitRate(); hr < 0.66 || hr > 0.67 {
		t.Errorf("hit rate = %f, want 2/3", hr)
	}
	var empty Stats
	if empty.HitRate() != 0 {
		t.Error("empty stats hit rate should be 0")
	}
}

func TestBadGeometryPanics(t *testing.T) {
	bad := []Config{
		{Sets: 0, Assoc: 2, LineBytes: 128, SectorBytes: 32},
		{Sets: 4, Assoc: 2, LineBytes: 100, SectorBytes: 32},
		{Sets: 4, Assoc: 2, LineBytes: 1024, SectorBytes: 32}, // 32 sectors > 8
	}
	for _, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v should panic", cfg)
				}
			}()
			New(cfg)
		}()
	}
	c := tiny()
	defer func() {
		if recover() == nil {
			t.Error("empty mask should panic")
		}
	}()
	c.Access(0, 0, true, false)
}

// Property: after any access sequence with allocation, probing an address
// that was just accessed with allocate=true hits, and LiveLines never
// exceeds capacity.
func TestCacheInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := tiny()
		capacity := 4 * 2
		for i := 0; i < 200; i++ {
			addr := uint64(r.Intn(64)) * 128
			mask := SectorMask(1 + r.Intn(15))
			alloc := r.Intn(3) > 0
			dirty := r.Intn(2) == 0
			c.Access(addr, mask, alloc, dirty)
			if alloc && c.Probe(addr, mask) != mask {
				return false // just-filled sectors must be present
			}
			if c.LiveLines() > capacity {
				return false
			}
		}
		st := c.Stats()
		return st.SectorHits+st.SectorMisses > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: stats conservation — every access accounts each requested
// sector exactly once as hit or miss.
func TestSectorConservation(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := tiny()
		var requested uint64
		for i := 0; i < 100; i++ {
			addr := uint64(r.Intn(32)) * 128
			mask := SectorMask(1 + r.Intn(15))
			requested += uint64(popcount(mask))
			c.Access(addr, mask, r.Intn(2) == 0, false)
		}
		st := c.Stats()
		return st.SectorHits+st.SectorMisses == requested
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkAccessHit(b *testing.B) {
	c := New(Config{Sets: 512, Assoc: 16, LineBytes: 128, SectorBytes: 32})
	c.Access(0, 0b1111, true, false)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Access(0, 0b1111, true, false)
	}
}

func BenchmarkAccessStream(b *testing.B) {
	c := New(Config{Sets: 512, Assoc: 16, LineBytes: 128, SectorBytes: 32})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Access(uint64(i)*128, 0b1111, true, false)
	}
}
