package sched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ladm/internal/arch"
	"ladm/internal/kir"
)

func hierCfg() *arch.Config {
	c := arch.DefaultHierarchical()
	return &c
}

func flatCfg() *arch.Config {
	c := arch.FourGPUSwitch(180)
	return &c
}

func kernel1D(tbs int) *kir.Kernel {
	return &kir.Kernel{Name: "k", Grid: kir.Dim1(tbs), Block: kir.Dim1(128)}
}

func kernel2D(x, y int) *kir.Kernel {
	return &kir.Kernel{Name: "k", Grid: kir.Dim2(x, y), Block: kir.Dim2(16, 16)}
}

// checkComplete verifies every TB is assigned exactly once.
func checkComplete(t *testing.T, a Assignment, total int) {
	t.Helper()
	seen := make(map[int32]bool)
	for _, q := range a.Queues {
		for _, tb := range q {
			if seen[tb] {
				t.Fatalf("TB %d assigned twice", tb)
			}
			if int(tb) >= total || tb < 0 {
				t.Fatalf("TB %d out of range %d", tb, total)
			}
			seen[tb] = true
		}
	}
	if len(seen) != total {
		t.Fatalf("assigned %d of %d TBs", len(seen), total)
	}
}

func TestBatchedFlat(t *testing.T) {
	cfg := flatCfg()
	a := Batched{Batch: 2}.Assign(kernel1D(16), cfg)
	checkComplete(t, a, 16)
	// Batch 0 (TB 0,1) -> node 0; batch 1 (TB 2,3) -> node 1; ...
	if a.Queues[0][0] != 0 || a.Queues[0][1] != 1 || a.Queues[1][0] != 2 {
		t.Errorf("flat batching wrong: %v", a.Queues)
	}
	// Wraps: batch 4 (TB 8,9) -> node 0 again.
	if a.Queues[0][2] != 8 {
		t.Errorf("wrap-around wrong: %v", a.Queues[0])
	}
	if a.BatchTBs != 2 {
		t.Errorf("BatchTBs = %d", a.BatchTBs)
	}
}

func TestBatchedDefaultsAndName(t *testing.T) {
	cfg := flatCfg()
	a := Batched{}.Assign(kernel1D(8), cfg) // batch clamps to 1
	checkComplete(t, a, 8)
	if a.BatchTBs != 1 {
		t.Errorf("default batch = %d", a.BatchTBs)
	}
	if got := (Batched{Batch: 4}).Name(); got != "batched-4" {
		t.Errorf("Name = %q", got)
	}
	if got := (Batched{Batch: 4, Hierarchical: true}).Name(); got != "hier-batched-4" {
		t.Errorf("hier Name = %q", got)
	}
	if got := (Batched{Batch: 4, Label: "CODA"}).Name(); got != "CODA" {
		t.Errorf("label Name = %q", got)
	}
}

func TestBatchedHierarchical(t *testing.T) {
	cfg := hierCfg() // 4 GPUs x 4 chiplets
	a := Batched{Batch: 1, Hierarchical: true}.Assign(kernel1D(32), cfg)
	checkComplete(t, a, 32)
	// Batches 0..3 go to GPU 0's chiplets 0..3; 4..7 to GPU 1; etc.
	for tb := 0; tb < 16; tb++ {
		gpu := tb / 4 % 4
		chiplet := tb % 4
		node := gpu*4 + chiplet
		found := false
		for _, q := range a.Queues[node] {
			if q == int32(tb) {
				found = true
			}
		}
		if !found {
			t.Errorf("TB %d not on node %d: %v", tb, node, a.Queues)
		}
	}
}

func TestBatchedHierarchicalOnFlatFallsBack(t *testing.T) {
	cfg := flatCfg() // 1 chiplet per GPU
	ah := Batched{Batch: 2, Hierarchical: true}.Assign(kernel1D(16), cfg)
	af := Batched{Batch: 2}.Assign(kernel1D(16), cfg)
	for n := range ah.Queues {
		if len(ah.Queues[n]) != len(af.Queues[n]) {
			t.Fatalf("hier on flat differs from flat: %v vs %v", ah.Queues, af.Queues)
		}
		for i := range ah.Queues[n] {
			if ah.Queues[n][i] != af.Queues[n][i] {
				t.Fatalf("hier on flat differs from flat")
			}
		}
	}
}

func TestKernelWide(t *testing.T) {
	cfg := flatCfg()
	a := KernelWide{}.Assign(kernel1D(16), cfg)
	checkComplete(t, a, 16)
	// Node 0 gets TBs 0..3, node 1 gets 4..7, ...
	for node := 0; node < 4; node++ {
		if len(a.Queues[node]) != 4 {
			t.Fatalf("uneven chunks: %v", a.Queues)
		}
		for i, tb := range a.Queues[node] {
			if int(tb) != node*4+i {
				t.Errorf("node %d queue: %v", node, a.Queues[node])
			}
		}
	}
	if (KernelWide{}).Name() != "kernel-wide" {
		t.Error("name")
	}
}

func TestKernelWideUneven(t *testing.T) {
	cfg := flatCfg()
	a := KernelWide{}.Assign(kernel1D(10), cfg)
	checkComplete(t, a, 10)
	// ceil(10/4) = 3 per node; last node gets the remainder.
	if len(a.Queues[0]) != 3 || len(a.Queues[3]) != 1 {
		t.Errorf("uneven split: %v", a.Queues)
	}
}

func TestKernelWideFewerTBsThanNodes(t *testing.T) {
	cfg := hierCfg()
	a := KernelWide{}.Assign(kernel1D(3), cfg)
	checkComplete(t, a, 3)
}

func TestRowBindingFlat(t *testing.T) {
	cfg := flatCfg()
	a := RowBinding{}.Assign(kernel2D(8, 8), cfg)
	checkComplete(t, a, 64)
	// 8 rows over 4 nodes: rows 0,1 -> node 0; rows 2,3 -> node 1; ...
	nodeOf := a.NodeOf()
	for row := 0; row < 8; row++ {
		want := int32(row / 2)
		for bx := 0; bx < 8; bx++ {
			if got := nodeOf[row*8+bx]; got != want {
				t.Fatalf("TB(%d,%d) on node %d, want %d", bx, row, got, want)
			}
		}
	}
}

func TestRowBindingHierarchical(t *testing.T) {
	cfg := hierCfg()
	a := RowBinding{Hierarchical: true}.Assign(kernel2D(8, 16), cfg)
	checkComplete(t, a, 128)
	nodeOf := a.NodeOf()
	// 16 rows over 4 GPUs: rows 0..3 on GPU 0, rows 4..7 on GPU 1, etc.
	// Within a GPU rows round-robin chiplets: row r -> chiplet r%4.
	for row := 0; row < 16; row++ {
		gpu := row / 4
		chiplet := row % 4
		want := int32(gpu*4 + chiplet)
		if got := nodeOf[row*8]; got != want {
			t.Errorf("row %d on node %d, want %d", row, got, want)
		}
		// Whole row on one node.
		for bx := 1; bx < 8; bx++ {
			if nodeOf[row*8+bx] != nodeOf[row*8] {
				t.Fatalf("row %d split across nodes", row)
			}
		}
	}
}

func TestColBindingFlat(t *testing.T) {
	cfg := flatCfg()
	a := ColBinding{}.Assign(kernel2D(8, 8), cfg)
	checkComplete(t, a, 64)
	nodeOf := a.NodeOf()
	for col := 0; col < 8; col++ {
		want := int32(col / 2)
		for row := 0; row < 8; row++ {
			if got := nodeOf[row*8+col]; got != want {
				t.Fatalf("TB(%d,%d) on node %d, want %d", col, row, got, want)
			}
		}
	}
	// Queue order within a column walks rows in order (streaming-friendly).
	q := a.Queues[0]
	if q[0] != 0 || q[1] != 8 {
		t.Errorf("column queue order: %v", q[:4])
	}
}

func TestColBindingHierarchical(t *testing.T) {
	cfg := hierCfg()
	a := ColBinding{Hierarchical: true}.Assign(kernel2D(16, 4), cfg)
	checkComplete(t, a, 64)
	nodeOf := a.NodeOf()
	for col := 0; col < 16; col++ {
		gpu := col / 4
		want := int32(gpu*4 + col%4)
		if got := nodeOf[col]; got != want {
			t.Errorf("col %d on node %d, want %d", col, got, want)
		}
	}
}

func TestRowBindingFewRows(t *testing.T) {
	// 2 rows on a 16-node system: nodes beyond the rows stay idle but all
	// TBs are placed.
	cfg := hierCfg()
	a := RowBinding{}.Assign(kernel2D(32, 2), cfg)
	checkComplete(t, a, 64)
}

func TestMonolithicSingleQueue(t *testing.T) {
	mono := arch.MonolithicGPU()
	a := KernelWide{}.Assign(kernel1D(100), &mono)
	checkComplete(t, a, 100)
	if len(a.Queues) != 1 || len(a.Queues[0]) != 100 {
		t.Errorf("monolithic queues: %d", len(a.Queues))
	}
}

// Property: every scheduler assigns every TB exactly once for random grid
// shapes and both topologies.
func TestSchedulersComplete(t *testing.T) {
	scheds := []Scheduler{
		Batched{Batch: 1}, Batched{Batch: 8}, Batched{Batch: 4, Hierarchical: true},
		KernelWide{},
		RowBinding{}, RowBinding{Hierarchical: true},
		ColBinding{}, ColBinding{Hierarchical: true},
	}
	cfgs := []*arch.Config{hierCfg(), flatCfg()}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		gx, gy := 1+r.Intn(40), 1+r.Intn(40)
		k := kernel2D(gx, gy)
		for _, cfg := range cfgs {
			for _, s := range scheds {
				a := s.Assign(k, cfg)
				seen := make(map[int32]bool)
				for node, q := range a.Queues {
					if node >= cfg.Nodes() {
						return false
					}
					for _, tb := range q {
						if seen[tb] || int(tb) >= gx*gy {
							return false
						}
						seen[tb] = true
					}
				}
				if len(seen) != gx*gy {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: batched scheduling is load-balanced within one batch across
// nodes (max-min queue length bounded by one batch).
func TestBatchedBalance(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		cfg := flatCfg()
		batch := 1 + r.Intn(8)
		tbs := 1 + r.Intn(500)
		a := Batched{Batch: batch}.Assign(kernel1D(tbs), cfg)
		minQ, maxQ := 1<<30, 0
		for _, q := range a.Queues {
			if len(q) < minQ {
				minQ = len(q)
			}
			if len(q) > maxQ {
				maxQ = len(q)
			}
		}
		return maxQ-minQ <= batch
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestBindLineEdgeCases(t *testing.T) {
	cfg := hierCfg()
	// Fewer lines than GPUs: everything clamps into range.
	for i := 0; i < 3; i++ {
		n := BindLine(i, 3, cfg, true)
		if n < 0 || n >= cfg.Nodes() {
			t.Fatalf("BindLine(%d,3) = %d out of range", i, n)
		}
	}
	// Flat binding with lines == nodes is the identity.
	for i := 0; i < cfg.Nodes(); i++ {
		if got := BindLine(i, cfg.Nodes(), cfg, false); got != i {
			t.Errorf("flat BindLine(%d) = %d", i, got)
		}
	}
	// Hierarchical binding keeps contiguous groups on one GPU.
	lines := 64
	perGPU := lines / cfg.GPUs
	for i := 0; i < lines; i++ {
		node := BindLine(i, lines, cfg, true)
		if cfg.GPUOfNode(node) != i/perGPU {
			t.Errorf("line %d on GPU %d, want %d", i, cfg.GPUOfNode(node), i/perGPU)
		}
	}
}

// Property: BindLine is monotone in GPU index for hierarchical mode (later
// lines never land on earlier GPUs).
func TestBindLineMonotoneGPUs(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		cfg := hierCfg()
		n := 1 + r.Intn(200)
		prevGPU := -1
		for i := 0; i < n; i++ {
			node := BindLine(i, n, cfg, true)
			gpu := cfg.GPUOfNode(node)
			if gpu < prevGPU {
				return false
			}
			if gpu > prevGPU {
				prevGPU = gpu
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
