// Package sched implements the threadblock-to-node scheduling mechanisms
// compared in the paper: flat and hierarchical batched round-robin
// (baseline, Batch+FT, CODA/H-CODA, and LASP's alignment-aware scheduler,
// which differ only in how the batch size is chosen), kernel-wide
// contiguous chunking (Milic et al.), and LASP's row-binding and
// column-binding schedulers that keep a grid row or column of threadblocks
// on one node.
//
// A scheduler maps the linearized grid (row-major, id = by*gridDim.x + bx)
// to one FIFO queue per NUMA node; SMs of a node drain their queue in
// order. Policy selection — which mechanism and which batch size a given
// kernel gets — lives in internal/runtime.
package sched

import (
	"fmt"

	"ladm/internal/arch"
	"ladm/internal/kir"
)

// Assignment is the result of scheduling one kernel launch.
type Assignment struct {
	// Queues holds, per node, the ordered threadblock ids that node runs.
	Queues [][]int32
	// BatchTBs records the batch granularity used (diagnostics).
	BatchTBs int
	// Scheduler is the name of the mechanism that produced the assignment.
	Scheduler string
}

// TotalTBs returns the number of threadblocks across all queues.
func (a *Assignment) TotalTBs() int {
	n := 0
	for _, q := range a.Queues {
		n += len(q)
	}
	return n
}

// NodeOf returns the node each threadblock was assigned to.
func (a *Assignment) NodeOf() []int32 {
	out := make([]int32, a.TotalTBs())
	for node, q := range a.Queues {
		for _, tb := range q {
			out[tb] = int32(node)
		}
	}
	return out
}

// Scheduler assigns a kernel's threadblocks to NUMA nodes.
type Scheduler interface {
	Name() string
	Assign(k *kir.Kernel, cfg *arch.Config) Assignment
}

func newQueues(nodes int) [][]int32 {
	q := make([][]int32, nodes)
	for i := range q {
		q[i] = []int32{}
	}
	return q
}

// Batched schedules fixed-size batches of consecutive threadblocks.
//
// Flat mode hands batch b to node b mod N — the round-robin of the
// baseline (batch 1), Batch+FT (a static batch), CODA and LASP's
// alignment-aware scheduler (page-aligned batches via Equation 2).
//
// Hierarchical mode groups ChipletsPerGPU consecutive batches onto one
// GPU (round-robin across its chiplets) before moving to the next GPU, so
// adjacent batches stay behind the same switch port — the paper's
// hierarchical-affinity round-robin.
type Batched struct {
	Batch        int
	Hierarchical bool
	// Label overrides the reported name (e.g. "CODA" vs "align-aware").
	Label string
}

// Name implements Scheduler.
func (s Batched) Name() string {
	if s.Label != "" {
		return s.Label
	}
	if s.Hierarchical {
		return fmt.Sprintf("hier-batched-%d", s.Batch)
	}
	return fmt.Sprintf("batched-%d", s.Batch)
}

// Assign implements Scheduler.
func (s Batched) Assign(k *kir.Kernel, cfg *arch.Config) Assignment {
	batch := s.Batch
	if batch < 1 {
		batch = 1
	}
	nodes := cfg.Nodes()
	queues := newQueues(nodes)
	total := k.Grid.Count()
	chiplets := cfg.ChipletsPerGPU
	for tb := 0; tb < total; tb++ {
		b := tb / batch
		var node int
		if s.Hierarchical && chiplets > 1 {
			super := b / chiplets
			gpu := super % cfg.GPUs
			chiplet := b % chiplets
			node = gpu*chiplets + chiplet
		} else {
			node = b % nodes
		}
		queues[node] = append(queues[node], int32(tb))
	}
	return Assignment{Queues: queues, BatchTBs: batch, Scheduler: s.Name()}
}

// KernelWide partitions the linearized grid into N contiguous chunks, one
// per node — the kernel-wide grid partitioning of Milic et al., and LASP's
// fallback for ITL and unclassified kernels. Contiguity across the whole
// grid also makes it hierarchical by construction: neighbouring chunks sit
// on neighbouring chiplets of the same GPU.
type KernelWide struct{}

// Name implements Scheduler.
func (KernelWide) Name() string { return "kernel-wide" }

// Assign implements Scheduler.
func (KernelWide) Assign(k *kir.Kernel, cfg *arch.Config) Assignment {
	nodes := cfg.Nodes()
	total := k.Grid.Count()
	per := (total + nodes - 1) / nodes
	if per < 1 {
		per = 1
	}
	queues := newQueues(nodes)
	for tb := 0; tb < total; tb++ {
		node := tb / per
		if node >= nodes {
			node = nodes - 1
		}
		queues[node] = append(queues[node], int32(tb))
	}
	return Assignment{Queues: queues, BatchTBs: per, Scheduler: "kernel-wide"}
}

// RowBinding keeps every threadblock of a grid row on one node (rows 2 and
// 4 of Table II). Hierarchically, contiguous groups of rows go to one GPU
// and rows round-robin across its chiplets; flat systems get contiguous
// rows per node.
type RowBinding struct {
	Hierarchical bool
}

// Name implements Scheduler.
func (s RowBinding) Name() string { return "row-binding" }

// Assign implements Scheduler.
func (s RowBinding) Assign(k *kir.Kernel, cfg *arch.Config) Assignment {
	queues := newQueues(cfg.Nodes())
	rows, cols := k.Grid.Y, k.Grid.X
	if rows < 1 {
		rows = 1
	}
	for row := 0; row < rows; row++ {
		node := BindLine(row, rows, cfg, s.Hierarchical)
		for bx := 0; bx < cols; bx++ {
			queues[node] = append(queues[node], int32(row*cols+bx))
		}
	}
	return Assignment{Queues: queues, BatchTBs: cols, Scheduler: s.Name()}
}

// ColBinding keeps every threadblock of a grid column on one node (rows 3
// and 5 of Table II).
type ColBinding struct {
	Hierarchical bool
}

// Name implements Scheduler.
func (s ColBinding) Name() string { return "col-binding" }

// Assign implements Scheduler.
func (s ColBinding) Assign(k *kir.Kernel, cfg *arch.Config) Assignment {
	queues := newQueues(cfg.Nodes())
	rows, cols := k.Grid.Y, k.Grid.X
	if rows < 1 {
		rows = 1
	}
	for col := 0; col < cols; col++ {
		node := BindLine(col, cols, cfg, s.Hierarchical)
		for row := 0; row < rows; row++ {
			queues[node] = append(queues[node], int32(row*cols+col))
		}
	}
	return Assignment{Queues: queues, BatchTBs: rows, Scheduler: s.Name()}
}

// BindLine maps grid line i of n (a row or column) to a node: contiguous
// groups of lines per GPU with lines round-robin across the GPU's chiplets
// when hierarchical, contiguous lines per node when flat. Exported so the
// runtime can co-place data chunks with the lines that own them.
func BindLine(i, n int, cfg *arch.Config, hierarchical bool) int {
	nodes := cfg.Nodes()
	if hierarchical && cfg.ChipletsPerGPU > 1 {
		perGPU := (n + cfg.GPUs - 1) / cfg.GPUs
		if perGPU < 1 {
			perGPU = 1
		}
		gpu := i / perGPU
		if gpu >= cfg.GPUs {
			gpu = cfg.GPUs - 1
		}
		chiplet := (i % perGPU) % cfg.ChipletsPerGPU
		return gpu*cfg.ChipletsPerGPU + chiplet
	}
	per := (n + nodes - 1) / nodes
	if per < 1 {
		per = 1
	}
	node := i / per
	if node >= nodes {
		node = nodes - 1
	}
	return node
}
