package simstore

import (
	"bytes"
	"testing"

	"ladm/internal/stats"
)

// TestRescanSeesOtherProcessWrites is the cross-process sharing
// contract: two stores open on the same directory, and a record one of
// them writes becomes visible to the other after Rescan — without
// reopening.
func TestRescanSeesOtherProcessWrites(t *testing.T) {
	dir := t.TempDir()
	a := openTest(t, dir, Options{})
	b := openTest(t, dir, Options{})

	payload := []byte(`{"cycles": 99}`)
	a.Put("aa1234", payload, stats.NewProvenance("proc-a"))

	// B's index predates the write: a plain Get must miss.
	if _, ok := b.Get("aa1234"); ok {
		t.Fatalf("store B saw A's write without a rescan; the miss path is untested")
	}
	if n := b.Rescan(); n != 1 {
		t.Fatalf("Rescan = %d, want 1 new record", n)
	}
	got, ok := b.Get("aa1234")
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("post-rescan Get = %q, %v; want %q, true", got, ok, payload)
	}

	// Rescan is idempotent: known keys are not re-added or re-counted.
	if n := b.Rescan(); n != 0 {
		t.Fatalf("second Rescan = %d, want 0", n)
	}
	st := b.Stats()
	if st.Records != 1 {
		t.Fatalf("records = %d after rescans, want 1", st.Records)
	}
	if want := a.Stats().Bytes; st.Bytes != want {
		t.Fatalf("bytes = %d after rescans, want %d (single-counted)", st.Bytes, want)
	}
}

// TestRescanBothDirections: sharing is symmetric — each store picks up
// the other's records.
func TestRescanBothDirections(t *testing.T) {
	dir := t.TempDir()
	a := openTest(t, dir, Options{})
	b := openTest(t, dir, Options{})

	a.Put("aa0001", []byte("from-a"), stats.NewProvenance("proc-a"))
	b.Put("bb0002", []byte("from-b"), stats.NewProvenance("proc-b"))

	if n := a.Rescan(); n != 1 {
		t.Fatalf("a.Rescan = %d, want 1", n)
	}
	if n := b.Rescan(); n != 1 {
		t.Fatalf("b.Rescan = %d, want 1", n)
	}
	if got, ok := a.Get("bb0002"); !ok || string(got) != "from-b" {
		t.Fatalf("a.Get(bb0002) = %q, %v", got, ok)
	}
	if got, ok := b.Get("aa0001"); !ok || string(got) != "from-a" {
		t.Fatalf("b.Get(aa0001) = %q, %v", got, ok)
	}
}
