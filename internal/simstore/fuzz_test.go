package simstore

import (
	"bytes"
	"errors"
	"testing"

	"ladm/internal/stats"
)

// FuzzEnvelopeDecode feeds arbitrary bytes to the on-disk record parser:
// whatever the disk hands back, DecodeEnvelope must return either a
// valid (header, payload) pair or a *CorruptError — never panic, never
// some other error a caller would not know to quarantine on.
func FuzzEnvelopeDecode(f *testing.F) {
	valid, err := EncodeEnvelope("aabb01", "simsvc/v2", []byte(`{"cycles":1}`),
		stats.Provenance{Tool: "fuzz"})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("\n"))
	f.Add([]byte("not json\npayload"))
	f.Add([]byte(`{"magic":"ladm-simstore","version":1}` + "\n"))
	f.Add(valid[:len(valid)-3]) // truncated payload
	f.Add(bytes.Replace(valid, []byte("1"), []byte("2"), 1))

	f.Fuzz(func(t *testing.T, data []byte) {
		hdr, payload, err := DecodeEnvelope(data)
		if err != nil {
			var ce *CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("non-corrupt error %T: %v", err, err)
			}
			return
		}
		if hdr.Magic != Magic || hdr.Version != Version {
			t.Fatalf("accepted header %+v", hdr)
		}
		if len(payload) != hdr.Len {
			t.Fatalf("payload length %d, header says %d", len(payload), hdr.Len)
		}
		// A record the parser accepts must survive a re-encode/re-decode
		// round trip with the payload intact.
		re, err := EncodeEnvelope(hdr.Key, hdr.Schema, payload, hdr.Provenance)
		if err != nil {
			t.Fatal(err)
		}
		_, payload2, err := DecodeEnvelope(re)
		if err != nil || !bytes.Equal(payload, payload2) {
			t.Fatalf("roundtrip failed: %v", err)
		}
	})
}
