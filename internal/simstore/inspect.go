package simstore

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Offline envelope inspection: decode record headers (schema, key, CRC,
// provenance) for both live and quarantined files without opening the
// store, so "what produced this and when did it rot" needs no hex
// editor. Inspection is read-only and deliberately lenient — a corrupt
// record still yields whatever header fields survive, plus the reason
// validation failed.

// RecordInfo describes one on-disk record, live or quarantined.
type RecordInfo struct {
	// Path is the file's location; Key the store key derived from the
	// file name (quarantine suffixes stripped).
	Path string `json:"path"`
	Key  string `json:"key"`
	// Quarantined is true for files under quarantine/.
	Quarantined bool `json:"quarantined"`
	// Size is the whole file's byte length (envelope + payload).
	Size int64 `json:"size"`
	// Header holds whatever header fields could be recovered; nil when
	// not even the header line parsed.
	Header *Header `json:"header,omitempty"`
	// Valid is true when the record passes full envelope validation
	// (magic, version, length, checksum); Err explains a false.
	Valid bool   `json:"valid"`
	Err   string `json:"err,omitempty"`
}

// InspectFile decodes one record file. The error return is for files
// that cannot be read at all; a readable-but-rotten record comes back
// with Valid=false and the reason in Err.
func InspectFile(path string) (RecordInfo, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return RecordInfo{}, err
	}
	info := RecordInfo{
		Path: path,
		Key:  keyOfFile(filepath.Base(path)),
		Size: int64(len(data)),
	}
	if _, _, err := DecodeEnvelope(data); err != nil {
		info.Err = err.Error()
	} else {
		info.Valid = true
	}
	// Best-effort header recovery, independent of full validation: a
	// record with a flipped payload bit still has readable provenance.
	if nl := bytes.IndexByte(data, '\n'); nl >= 0 {
		var hdr Header
		if json.Unmarshal(data[:nl], &hdr) == nil && hdr.Magic == Magic {
			info.Header = &hdr
		}
	}
	return info, nil
}

// keyOfFile strips the record extension and, for quarantined files, the
// ".<nanos>" timestamp suffix appended at quarantine time.
func keyOfFile(name string) string {
	if i := strings.Index(name, recExt); i >= 0 {
		return name[:i]
	}
	return name
}

// InspectDir walks a store directory (the root passed to Open) and
// returns every record under objects/ and quarantine/, live records
// first, each group sorted by key. Unreadable files are skipped; an
// error is returned only when root itself is unusable.
func InspectDir(root string) ([]RecordInfo, error) {
	if _, err := os.Stat(root); err != nil {
		return nil, fmt.Errorf("simstore: inspect %s: %w", root, err)
	}
	var out []RecordInfo
	for _, sub := range []struct {
		dir         string
		quarantined bool
	}{{objectsDir, false}, {quarantineDir, true}} {
		var group []RecordInfo
		base := filepath.Join(root, sub.dir)
		filepath.WalkDir(base, func(path string, d fs.DirEntry, err error) error {
			if err != nil || d.IsDir() {
				return nil
			}
			info, ferr := InspectFile(path)
			if ferr != nil {
				return nil
			}
			info.Quarantined = sub.quarantined
			group = append(group, info)
			return nil
		})
		sort.Slice(group, func(i, j int) bool {
			if group[i].Key != group[j].Key {
				return group[i].Key < group[j].Key
			}
			return group[i].Path < group[j].Path
		})
		out = append(out, group...)
	}
	return out, nil
}
