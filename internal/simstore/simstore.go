// Package simstore is a durable, content-addressed result store: the
// second-level cache behind internal/simsvc's in-memory result map.
// Records are written crash-safely (serialize → temp file → fsync →
// atomic rename into place) as self-describing envelopes carrying the
// producer's key schema, a CRC-32C of the payload and run provenance.
// Reads never trust the disk: a record that fails validation is moved to
// a quarantine sidecar directory and reported as a miss, so corruption
// degrades to a re-simulation, never an error a client sees. The store
// is size-capped with LRU-by-access-time eviction, retries transient
// I/O errors with capped exponential backoff and jitter, and — when a
// disk refuses to cooperate — marks itself degraded and turns every
// operation into a cheap no-op so the service above keeps serving from
// memory alone.
package simstore

import (
	"errors"
	"fmt"
	"io/fs"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ladm/internal/stats"
)

// On-disk layout under Options.Dir:
//
//	objects/<k[:2]>/<key>.rec  live records (sharded by key prefix)
//	quarantine/<key>.<nanos>   records that failed validation
//	tmp/                       in-flight writes (cleared on Open)
const (
	objectsDir    = "objects"
	quarantineDir = "quarantine"
	tmpDir        = "tmp"
	recExt        = ".rec"
)

// Options configures a store.
type Options struct {
	// Dir is the store root; it is created if missing.
	Dir string
	// MaxBytes caps the summed size of live records (0 = unlimited).
	// Crossing the cap evicts least-recently-accessed records.
	MaxBytes int64
	// Schema is the producer's key schema (e.g. simsvc.KeySchema).
	// Records carrying any other schema are treated as corrupt.
	Schema string
	// Retries is the number of backoff retries for transient I/O errors
	// before the store degrades (default 3).
	Retries int
	// RetryBase is the first backoff delay (default 25ms); successive
	// delays double, jittered, capped at RetryMax (default 1s).
	RetryBase time.Duration
	RetryMax  time.Duration
	// Logf receives operational messages (nil: silent).
	Logf func(format string, args ...any)
}

// Stats is a point-in-time snapshot of the store's counters.
type Stats struct {
	Records int   // live records
	Bytes   int64 // summed live payload+envelope bytes
	Hits    int64 // Gets that returned a valid record
	Misses  int64 // Gets that found nothing
	Writes  int64 // records durably written
	// Corrupt counts records quarantined after failing validation.
	Corrupt int64
	// Evicted counts records removed by the size cap.
	Evicted int64
	// Retries counts backed-off retries of transient I/O errors.
	Retries int64
	// Dropped counts writes discarded because the store was degraded.
	Dropped int64
	// Healthy is false once the store has degraded to no-op mode.
	Healthy bool
}

type entry struct {
	size  int64
	atime time.Time
}

type writeReq struct {
	key     string
	payload []byte
	prov    stats.Provenance
}

// Store is a durable content-addressed record store. All methods are
// safe for concurrent use.
type Store struct {
	dir       string
	schema    string
	maxBytes  int64
	retries   int
	retryBase time.Duration
	retryMax  time.Duration
	logf      func(string, ...any)

	mu    sync.Mutex
	index map[string]*entry
	total int64

	degraded atomic.Bool
	hits     atomic.Int64
	misses   atomic.Int64
	writes   atomic.Int64
	corrupt  atomic.Int64
	evicted  atomic.Int64
	retried  atomic.Int64
	dropped  atomic.Int64

	wmu    sync.Mutex
	wq     chan writeReq
	wg     sync.WaitGroup
	closed bool
}

// Open prepares the directory layout, clears crash residue from tmp/,
// and rebuilds the record index from objects/. An error here means the
// directory is unusable (permissions, not a directory, ...): callers
// should log it and run store-less.
func Open(opts Options) (*Store, error) {
	if opts.Dir == "" {
		return nil, errors.New("simstore: no directory")
	}
	s := &Store{
		dir:       opts.Dir,
		schema:    opts.Schema,
		maxBytes:  opts.MaxBytes,
		retries:   opts.Retries,
		retryBase: opts.RetryBase,
		retryMax:  opts.RetryMax,
		logf:      opts.Logf,
		index:     map[string]*entry{},
		wq:        make(chan writeReq, 64),
	}
	if s.retries <= 0 {
		s.retries = 3
	}
	if s.retryBase <= 0 {
		s.retryBase = 25 * time.Millisecond
	}
	if s.retryMax <= 0 {
		s.retryMax = time.Second
	}
	if s.logf == nil {
		s.logf = func(string, ...any) {}
	}
	for _, d := range []string{objectsDir, quarantineDir, tmpDir} {
		if err := os.MkdirAll(filepath.Join(s.dir, d), 0o755); err != nil {
			return nil, fmt.Errorf("simstore: %w", err)
		}
	}
	// A crash mid-write leaves orphans in tmp/; they were never visible,
	// so deleting them is always safe.
	if ents, err := os.ReadDir(filepath.Join(s.dir, tmpDir)); err == nil {
		for _, e := range ents {
			os.Remove(filepath.Join(s.dir, tmpDir, e.Name()))
		}
	}
	if err := s.scan(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.evictLocked("")
	s.mu.Unlock()
	s.wg.Add(1)
	go s.writer()
	return s, nil
}

// scan rebuilds the index from objects/, using each file's mtime as its
// last-access time (Get bumps mtime on every hit, so mtime is the LRU
// clock that survives restarts).
func (s *Store) scan() error {
	root := filepath.Join(s.dir, objectsDir)
	return filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(d.Name(), recExt) {
			return err
		}
		info, err := d.Info()
		if err != nil {
			return nil // raced with deletion; skip
		}
		key := strings.TrimSuffix(d.Name(), recExt)
		s.index[key] = &entry{size: info.Size(), atime: info.ModTime()}
		s.total += info.Size()
		return nil
	})
}

// Rescan walks objects/ and indexes records written by other processes
// since Open (or the previous Rescan): the cross-process sharing
// primitive — two stores on the same directory see each other's
// completed writes without reopening. Keys already indexed keep their
// in-memory LRU clock; new keys enter with their file's mtime. Returns
// the number of records added. A degraded store rescans nothing.
func (s *Store) Rescan() int {
	if s.degraded.Load() {
		return 0
	}
	root := filepath.Join(s.dir, objectsDir)
	s.mu.Lock()
	defer s.mu.Unlock()
	added := 0
	filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(d.Name(), recExt) {
			return nil // walk errors degrade to "saw nothing new"
		}
		key := strings.TrimSuffix(d.Name(), recExt)
		if s.index[key] != nil {
			return nil
		}
		info, err := d.Info()
		if err != nil {
			return nil // raced with deletion; skip
		}
		s.index[key] = &entry{size: info.Size(), atime: info.ModTime()}
		s.total += info.Size()
		added++
		return nil
	})
	if added > 0 {
		s.evictLocked("")
		s.logf("simstore: rescan indexed %d records written since open", added)
	}
	return added
}

// Healthy reports whether the store is still operating (false once it
// has degraded to no-op mode after exhausting I/O retries).
func (s *Store) Healthy() bool { return !s.degraded.Load() }

// Stats returns the current counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	records, bytes := len(s.index), s.total
	s.mu.Unlock()
	return Stats{
		Records: records,
		Bytes:   bytes,
		Hits:    s.hits.Load(),
		Misses:  s.misses.Load(),
		Writes:  s.writes.Load(),
		Corrupt: s.corrupt.Load(),
		Evicted: s.evicted.Load(),
		Retries: s.retried.Load(),
		Dropped: s.dropped.Load(),
		Healthy: !s.degraded.Load(),
	}
}

// Len returns the number of live records.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Contains reports whether a live record is indexed under key. It is a
// pure index probe — no I/O, no validation, no LRU bump — so a caller
// that sees Contains() true followed by a Get miss knows the record was
// just quarantined or evicted, not absent all along.
func (s *Store) Contains(key string) bool {
	if s.degraded.Load() {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.index[key] != nil
}

// Dir returns the store root.
func (s *Store) Dir() string { return s.dir }

func (s *Store) path(key string) string {
	shard := "xx"
	if len(key) >= 2 {
		shard = key[:2]
	}
	return filepath.Join(s.dir, objectsDir, shard, key+recExt)
}

// withRetry runs fn, retrying transient errors with doubling, jittered,
// capped backoff. Exhausting the retries degrades the store.
func (s *Store) withRetry(op string, fn func() error) error {
	delay := s.retryBase
	var err error
	for attempt := 0; ; attempt++ {
		if err = fn(); err == nil {
			return nil
		}
		if attempt >= s.retries {
			break
		}
		s.retried.Add(1)
		// Full jitter: sleep a uniform fraction of the current delay so
		// concurrent retriers spread out instead of stampeding.
		time.Sleep(delay/2 + time.Duration(rand.Int63n(int64(delay/2)+1)))
		delay *= 2
		if delay > s.retryMax {
			delay = s.retryMax
		}
	}
	if s.degraded.CompareAndSwap(false, true) {
		s.logf("simstore: %s failed after %d retries (%v); degrading to store-less operation", op, s.retries, err)
	}
	return err
}

// Get returns the payload stored under key, or ok=false for a miss.
// Corrupt records are quarantined and reported as misses; transient I/O
// errors retry, then degrade the store and report a miss. Get never
// fails the caller.
func (s *Store) Get(key string) (payload []byte, ok bool) {
	if s.degraded.Load() {
		return nil, false
	}
	s.mu.Lock()
	e := s.index[key]
	s.mu.Unlock()
	if e == nil {
		s.misses.Add(1)
		return nil, false
	}
	path := s.path(key)
	var data []byte
	err := s.withRetry("read", func() error {
		var rerr error
		data, rerr = os.ReadFile(path)
		if os.IsNotExist(rerr) {
			// Not transient: the record is simply gone (eviction race,
			// external cleanup). Drop it from the index.
			data = nil
			return nil
		}
		return rerr
	})
	if err != nil || data == nil {
		if data == nil && err == nil {
			s.forget(key)
		}
		s.misses.Add(1)
		return nil, false
	}
	hdr, body, err := DecodeEnvelope(data)
	if err == nil && hdr.Schema != s.schema {
		err = corrupt("schema %q, store expects %q", hdr.Schema, s.schema)
	}
	if err == nil && hdr.Key != key {
		err = corrupt("record self-identifies as %q under key %q", hdr.Key, key)
	}
	if err != nil {
		s.quarantine(key, path, err)
		s.misses.Add(1)
		return nil, false
	}
	now := time.Now()
	// Bump mtime so LRU survives restarts; best-effort.
	os.Chtimes(path, now, now)
	s.mu.Lock()
	if e := s.index[key]; e != nil {
		e.atime = now
	}
	s.mu.Unlock()
	s.hits.Add(1)
	return body, true
}

// Quarantine moves the record stored under key to the quarantine
// directory and counts it as corrupt. Exported for layers above that
// validate payloads more deeply than the envelope can (e.g. JSON shape).
func (s *Store) Quarantine(key string, reason error) {
	s.quarantine(key, s.path(key), reason)
}

func (s *Store) quarantine(key, path string, reason error) {
	s.corrupt.Add(1)
	dst := filepath.Join(s.dir, quarantineDir,
		fmt.Sprintf("%s.%d", filepath.Base(path), time.Now().UnixNano()))
	if err := os.Rename(path, dst); err != nil {
		// Can't preserve the evidence; at least stop serving it.
		os.Remove(path)
		dst = "(removed)"
	}
	s.forget(key)
	s.logf("simstore: quarantined %s -> %s: %v", key, dst, reason)
}

// forget drops key from the index (the file is already gone or going).
func (s *Store) forget(key string) {
	s.mu.Lock()
	if e := s.index[key]; e != nil {
		s.total -= e.size
		delete(s.index, key)
	}
	s.mu.Unlock()
}

// Put durably stores payload under key: envelope → temp file → fsync →
// atomic rename → directory fsync. Transient errors retry, then degrade
// the store; Put never fails the caller.
func (s *Store) Put(key string, payload []byte, prov stats.Provenance) {
	if s.degraded.Load() {
		s.dropped.Add(1)
		return
	}
	data, err := EncodeEnvelope(key, s.schema, payload, prov)
	if err != nil {
		s.logf("simstore: %v", err)
		return
	}
	path := s.path(key)
	err = s.withRetry("write", func() error {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			return err
		}
		tmp, err := os.CreateTemp(filepath.Join(s.dir, tmpDir), "put-*")
		if err != nil {
			return err
		}
		defer os.Remove(tmp.Name()) // no-op after a successful rename
		if _, err := tmp.Write(data); err != nil {
			tmp.Close()
			return err
		}
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			return err
		}
		if err := tmp.Close(); err != nil {
			return err
		}
		if err := os.Rename(tmp.Name(), path); err != nil {
			return err
		}
		// Make the rename itself durable; best-effort (some filesystems
		// refuse directory fsync).
		if d, err := os.Open(filepath.Dir(path)); err == nil {
			d.Sync()
			d.Close()
		}
		return nil
	})
	if err != nil {
		s.dropped.Add(1)
		return
	}
	s.writes.Add(1)
	s.mu.Lock()
	if old := s.index[key]; old != nil {
		s.total -= old.size
	}
	s.index[key] = &entry{size: int64(len(data)), atime: time.Now()}
	s.total += int64(len(data))
	s.evictLocked(key)
	s.mu.Unlock()
}

// PutAsync queues a durable write and returns immediately; Close (or a
// full queue, which falls back to a synchronous write) guarantees it
// lands. The write-behind keeps store I/O off the simulation workers'
// completion path.
func (s *Store) PutAsync(key string, payload []byte, prov stats.Provenance) {
	s.wmu.Lock()
	if s.closed {
		s.wmu.Unlock()
		s.Put(key, payload, prov)
		return
	}
	select {
	case s.wq <- writeReq{key, payload, prov}:
		s.wmu.Unlock()
	default:
		s.wmu.Unlock()
		s.Put(key, payload, prov)
	}
}

func (s *Store) writer() {
	defer s.wg.Done()
	for req := range s.wq {
		s.Put(req.key, req.payload, req.prov)
	}
}

// Close flushes pending write-backs and stops the writer. The store
// must not be used after Close.
func (s *Store) Close() {
	s.wmu.Lock()
	if s.closed {
		s.wmu.Unlock()
		return
	}
	s.closed = true
	close(s.wq)
	s.wmu.Unlock()
	s.wg.Wait()
}

// evictLocked removes least-recently-accessed records until the live
// set fits maxBytes, never evicting keep (the record just written — a
// store smaller than its newest record would otherwise thrash).
// Requires s.mu.
func (s *Store) evictLocked(keep string) {
	if s.maxBytes <= 0 || s.total <= s.maxBytes {
		return
	}
	type victim struct {
		key string
		e   *entry
	}
	victims := make([]victim, 0, len(s.index))
	for k, e := range s.index {
		if k != keep {
			victims = append(victims, victim{k, e})
		}
	}
	sort.Slice(victims, func(i, j int) bool {
		if !victims[i].e.atime.Equal(victims[j].e.atime) {
			return victims[i].e.atime.Before(victims[j].e.atime)
		}
		return victims[i].key < victims[j].key
	})
	for _, v := range victims {
		if s.total <= s.maxBytes {
			break
		}
		os.Remove(s.path(v.key))
		s.total -= v.e.size
		delete(s.index, v.key)
		s.evicted.Add(1)
	}
}
