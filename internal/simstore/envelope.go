package simstore

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"

	"ladm/internal/stats"
)

// The on-disk record format is a self-describing envelope: one JSON
// header line, a newline, then the raw payload bytes. The header names
// the format (magic + version), the key schema of the producing service,
// the content key, a CRC-32C (Castagnoli) of the payload and its exact
// length, plus run provenance. Everything a reader needs to decide
// whether the record is trustworthy is in the header; everything it
// needs to detect rot is the checksum. A record that fails any of these
// checks is corrupt — never a parse panic, never a partial result.

// Magic identifies a simstore envelope; Version the header layout.
const (
	Magic   = "ladm-simstore"
	Version = 1
)

// castagnoli is the CRC-32C table used for payload checksums (the same
// polynomial storage systems like ext4 and iSCSI use).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Header is the envelope's self-description.
type Header struct {
	Magic   string `json:"magic"`
	Version int    `json:"version"`
	// Schema is the producer's key schema (e.g. "simsvc/v2"): payloads
	// only mean what the key says while the schema matches.
	Schema string `json:"schema"`
	// Key is the content hash the payload is stored under.
	Key string `json:"key"`
	// CRC32C is the Castagnoli checksum of the payload bytes.
	CRC32C uint32 `json:"crc32c"`
	// Len is the payload's exact byte length.
	Len int `json:"len"`
	// Provenance identifies the producing process.
	Provenance stats.Provenance `json:"provenance"`
}

// CorruptError describes a record that failed envelope validation. It is
// a diagnosis, not a failure mode: callers quarantine the record and
// recompute.
type CorruptError struct {
	Reason string
}

func (e *CorruptError) Error() string { return "simstore: corrupt record: " + e.Reason }

func corrupt(format string, args ...any) error {
	return &CorruptError{Reason: fmt.Sprintf(format, args...)}
}

// EncodeEnvelope serializes payload under key into the on-disk format.
func EncodeEnvelope(key, schema string, payload []byte, prov stats.Provenance) ([]byte, error) {
	hdr := Header{
		Magic:      Magic,
		Version:    Version,
		Schema:     schema,
		Key:        key,
		CRC32C:     crc32.Checksum(payload, castagnoli),
		Len:        len(payload),
		Provenance: prov,
	}
	head, err := json.Marshal(hdr)
	if err != nil {
		return nil, fmt.Errorf("simstore: encode header: %w", err)
	}
	buf := make([]byte, 0, len(head)+1+len(payload))
	buf = append(buf, head...)
	buf = append(buf, '\n')
	buf = append(buf, payload...)
	return buf, nil
}

// DecodeEnvelope parses and validates an on-disk record. It returns a
// *CorruptError for any malformed, truncated, mis-keyed, mis-schemed or
// checksum-failing input — the caller's cue to quarantine.
func DecodeEnvelope(data []byte) (Header, []byte, error) {
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		return Header{}, nil, corrupt("no header/payload separator")
	}
	var hdr Header
	if err := json.Unmarshal(data[:nl], &hdr); err != nil {
		return Header{}, nil, corrupt("unparseable header: %v", err)
	}
	if hdr.Magic != Magic {
		return Header{}, nil, corrupt("bad magic %q", hdr.Magic)
	}
	if hdr.Version != Version {
		return Header{}, nil, corrupt("unsupported version %d", hdr.Version)
	}
	payload := data[nl+1:]
	if len(payload) != hdr.Len {
		return Header{}, nil, corrupt("payload length %d, header says %d", len(payload), hdr.Len)
	}
	if got := crc32.Checksum(payload, castagnoli); got != hdr.CRC32C {
		return Header{}, nil, corrupt("crc32c mismatch: %08x, header says %08x", got, hdr.CRC32C)
	}
	return hdr, payload, nil
}
