package simstore

import (
	"os"
	"path/filepath"
	"testing"

	"ladm/internal/stats"
)

func openInspectStore(t *testing.T) *Store {
	t.Helper()
	s, err := Open(Options{Dir: t.TempDir(), Schema: "test/v1"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func TestContains(t *testing.T) {
	s := openInspectStore(t)
	if s.Contains("k1") {
		t.Fatal("empty store contains k1")
	}
	s.Put("k1", []byte("payload"), stats.Provenance{Tool: "test"})
	if !s.Contains("k1") {
		t.Fatal("store does not contain k1 after Put")
	}
	// Contains is a pure probe: it must not bump LRU or touch the disk,
	// and quarantining must clear it.
	s.Quarantine("k1", corrupt("test"))
	if s.Contains("k1") {
		t.Fatal("store still contains quarantined k1")
	}
}

func TestInspectDirListsLiveAndQuarantined(t *testing.T) {
	s := openInspectStore(t)
	prov := stats.Provenance{Tool: "inspect-test", Host: "h"}
	s.Put("aaaa", []byte("alpha"), prov)
	s.Put("bbbb", []byte("beta"), prov)

	// Rot one record's payload on disk, then quarantine it via a Get.
	path := s.path("bbbb")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("bbbb"); ok {
		t.Fatal("corrupt record served")
	}

	infos, err := InspectDir(s.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 {
		t.Fatalf("records = %d, want 2 (%+v)", len(infos), infos)
	}
	live, rotten := infos[0], infos[1]
	if live.Key != "aaaa" || live.Quarantined || !live.Valid {
		t.Errorf("live record = %+v", live)
	}
	if live.Header == nil || live.Header.Provenance.Tool != "inspect-test" {
		t.Errorf("live header = %+v", live.Header)
	}
	if rotten.Key != "bbbb" || !rotten.Quarantined || rotten.Valid || rotten.Err == "" {
		t.Errorf("quarantined record = %+v", rotten)
	}
	// The header survived the payload flip, so provenance is readable
	// even for the rotten record.
	if rotten.Header == nil || rotten.Header.Key != "bbbb" {
		t.Errorf("quarantined header = %+v", rotten.Header)
	}
}

func TestInspectFileUnparseable(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "junk.rec")
	if err := os.WriteFile(path, []byte("not an envelope at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	info, err := InspectFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Valid || info.Err == "" || info.Header != nil {
		t.Errorf("junk file = %+v", info)
	}
	if info.Key != "junk" {
		t.Errorf("key = %q, want junk", info.Key)
	}
}

func TestInspectDirMissingRoot(t *testing.T) {
	if _, err := InspectDir(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("inspecting a missing root did not error")
	}
}
