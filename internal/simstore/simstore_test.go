package simstore

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ladm/internal/stats"
)

func openTest(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	opts.Dir = dir
	if opts.Schema == "" {
		opts.Schema = "test/v1"
	}
	// Keep retry backoff out of test wall time.
	opts.Retries = 1
	opts.RetryBase = time.Millisecond
	opts.RetryMax = 2 * time.Millisecond
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func TestPutGetRoundtrip(t *testing.T) {
	s := openTest(t, t.TempDir(), Options{})
	payload := []byte(`{"cycles": 42}`)
	s.Put("aabbcc", payload, stats.NewProvenance("test"))
	got, ok := s.Get("aabbcc")
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q, %v; want %q, true", got, ok, payload)
	}
	if _, ok := s.Get("ddeeff"); ok {
		t.Error("Get of unknown key reported a hit")
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Writes != 1 || !st.Healthy {
		t.Errorf("stats = %+v", st)
	}
}

// TestReopenPersists is the crash-recovery contract at the byte layer:
// a record written before a "crash" (Close + new Open) is served
// byte-identically afterwards.
func TestReopenPersists(t *testing.T) {
	dir := t.TempDir()
	payload := []byte(`{"cycles": 7, "tbs": 3}`)
	s1 := openTest(t, dir, Options{})
	s1.Put("cafe01", payload, stats.NewProvenance("test"))
	s1.Close()

	s2 := openTest(t, dir, Options{})
	got, ok := s2.Get("cafe01")
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("after reopen: Get = %q, %v; want the original payload", got, ok)
	}
	if st := s2.Stats(); st.Records != 1 || st.Bytes <= int64(len(payload)) {
		t.Errorf("reopened index: %+v", st)
	}
}

// TestPutAsyncFlushOnClose verifies the write-behind queue lands before
// Close returns — the durability guarantee the HTTP drain relies on.
func TestPutAsyncFlushOnClose(t *testing.T) {
	dir := t.TempDir()
	s1 := openTest(t, dir, Options{})
	s1.PutAsync("feed02", []byte("payload"), stats.NewProvenance("test"))
	s1.Close()

	s2 := openTest(t, dir, Options{})
	if _, ok := s2.Get("feed02"); !ok {
		t.Fatal("asynchronous write did not survive Close + reopen")
	}
}

// TestBitFlipQuarantine flips one payload byte on disk and expects a
// miss, a corrupt count, and the damaged record preserved in quarantine.
func TestBitFlipQuarantine(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{})
	s.Put("beef03", []byte("precious result bytes"), stats.NewProvenance("test"))

	path := s.path("beef03")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, ok := s.Get("beef03"); ok {
		t.Fatal("corrupt record served as a hit")
	}
	st := s.Stats()
	if st.Corrupt != 1 {
		t.Errorf("corrupt = %d, want 1", st.Corrupt)
	}
	if !st.Healthy {
		t.Error("corruption degraded the store; it must stay healthy")
	}
	ents, err := os.ReadDir(filepath.Join(dir, quarantineDir))
	if err != nil || len(ents) != 1 {
		t.Fatalf("quarantine dir: %v entries, err %v; want 1", len(ents), err)
	}
	if !strings.HasPrefix(ents[0].Name(), "beef03") {
		t.Errorf("quarantined as %q", ents[0].Name())
	}
	// The key is forgotten: a rewrite works and serves again.
	s.Put("beef03", []byte("recomputed"), stats.NewProvenance("test"))
	if got, ok := s.Get("beef03"); !ok || string(got) != "recomputed" {
		t.Errorf("after recompute: %q, %v", got, ok)
	}
}

// TestSchemaMismatchQuarantine: a record written under another schema is
// corruption from this store's point of view.
func TestSchemaMismatchQuarantine(t *testing.T) {
	dir := t.TempDir()
	s1 := openTest(t, dir, Options{Schema: "old/v1"})
	s1.Put("0a0b0c", []byte("old-schema payload"), stats.NewProvenance("test"))
	s1.Close()

	s2 := openTest(t, dir, Options{Schema: "new/v2"})
	if _, ok := s2.Get("0a0b0c"); ok {
		t.Fatal("cross-schema record served as a hit")
	}
	if st := s2.Stats(); st.Corrupt != 1 {
		t.Errorf("corrupt = %d, want 1", st.Corrupt)
	}
}

func TestEvictionLRU(t *testing.T) {
	dir := t.TempDir()
	payload := bytes.Repeat([]byte("x"), 256)
	// Envelope overhead is ~200 bytes; cap to roughly two records.
	s := openTest(t, dir, Options{MaxBytes: 1100})
	s.Put("aa0001", payload, stats.NewProvenance("test"))
	s.Put("bb0002", payload, stats.NewProvenance("test"))
	// Touch aa0001 so bb0002 is the LRU victim. File mtimes are the LRU
	// clock; push them apart explicitly so the test is not at the mercy
	// of filesystem timestamp granularity.
	old := time.Now().Add(-time.Hour)
	os.Chtimes(s.path("bb0002"), old, old)
	s.mu.Lock()
	s.index["bb0002"].atime = old
	s.mu.Unlock()
	if _, ok := s.Get("aa0001"); !ok {
		t.Fatal("touch read missed")
	}
	s.Put("cc0003", payload, stats.NewProvenance("test"))

	if _, ok := s.Get("bb0002"); ok {
		t.Error("LRU record survived eviction")
	}
	if _, ok := s.Get("aa0001"); !ok {
		t.Error("recently-read record was evicted")
	}
	if _, ok := s.Get("cc0003"); !ok {
		t.Error("just-written record was evicted")
	}
	st := s.Stats()
	if st.Evicted == 0 {
		t.Error("no eviction counted")
	}
	if st.Bytes > 1100 {
		t.Errorf("live bytes %d exceed the cap", st.Bytes)
	}
}

// TestDegradeOnIOError replaces a record file with a directory so reads
// fail with a non-transient error that is not ENOENT: the store must
// exhaust its retries, degrade, and turn every later call into a cheap
// no-op rather than an error.
func TestDegradeOnIOError(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{})
	s.Put("dead04", []byte("payload"), stats.NewProvenance("test"))

	path := s.path("dead04")
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(path, 0o755); err != nil {
		t.Fatal(err)
	}

	if _, ok := s.Get("dead04"); ok {
		t.Fatal("unreadable record served as a hit")
	}
	if s.Healthy() {
		t.Fatal("store still healthy after exhausting read retries")
	}
	st := s.Stats()
	if st.Retries == 0 {
		t.Error("no retries counted before degrading")
	}
	// Degraded: writes are dropped, reads miss, nothing errors.
	s.Put("feed05", []byte("ignored"), stats.NewProvenance("test"))
	if _, ok := s.Get("feed05"); ok {
		t.Error("degraded store served a write")
	}
	if st := s.Stats(); st.Dropped == 0 {
		t.Error("degraded write not counted as dropped")
	}
}

// TestOpenClearsTmp: crash residue in tmp/ must not survive Open.
func TestOpenClearsTmp(t *testing.T) {
	dir := t.TempDir()
	s1 := openTest(t, dir, Options{})
	s1.Close()
	orphan := filepath.Join(dir, tmpDir, "put-orphan")
	if err := os.WriteFile(orphan, []byte("half-written"), 0o644); err != nil {
		t.Fatal(err)
	}
	openTest(t, dir, Options{})
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Errorf("tmp orphan survived Open: %v", err)
	}
}

func TestOpenRejectsUnusableDir(t *testing.T) {
	if _, err := Open(Options{}); err == nil {
		t.Error("Open with no dir succeeded")
	}
	file := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(file, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: file, Schema: "test/v1"}); err == nil {
		t.Error("Open over a regular file succeeded")
	}
}
