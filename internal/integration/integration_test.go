// Package integration_test checks cross-module invariants of the whole
// pipeline — compiler -> runtime -> trace — without the timing engine:
// the fraction of traffic each policy keeps node-local is measured by
// walking the actual generated trace against the actual page table, for
// every workload. These are the properties the paper's mechanisms exist
// to enforce.
package integration_test

import (
	"testing"

	"ladm/internal/arch"
	"ladm/internal/kernels"
	"ladm/internal/kir"
	rt "ladm/internal/runtime"
	"ladm/internal/trace"
)

const scale = 16

// localFraction walks every transaction of every threadblock of the plan's
// first launch and returns the fraction of bytes homed on the issuing
// threadblock's node.
func localFraction(t *testing.T, w *kir.Workload, plan *rt.Plan) float64 {
	t.Helper()
	lp := plan.Launches[0]
	k := lp.Launch.Kernel
	gen, err := trace.New(k, plan.Space, w.Resolver(),
		plan.Cfg.LineBytes, plan.Cfg.SectorBytes, plan.Cfg.WarpSize)
	if err != nil {
		t.Fatal(err)
	}
	warps := k.WarpsPerTB(plan.Cfg.WarpSize)
	var local, total uint64
	var buf []trace.Transaction
	for node, q := range lp.Assignment.Queues {
		for _, tb := range q {
			iters := k.EffItersFor(int(tb))
			for _, phase := range []kir.Phase{kir.PreLoop, kir.InLoop, kir.PostLoop} {
				if gen.AccessSites(phase) == 0 {
					continue
				}
				ms := []int{0}
				if phase == kir.InLoop {
					ms = ms[:0]
					for m := 0; m < iters; m++ {
						ms = append(ms, m)
					}
				}
				for _, m := range ms {
					for wp := 0; wp < warps; wp++ {
						buf = buf[:0]
						buf, _ = gen.WarpTransactions(int(tb), wp, m, phase, buf)
						gen.FinalizeBytes(buf)
						for _, tx := range buf {
							total += uint64(tx.Bytes)
							home := plan.Space.Home(tx.Addr)
							if home < 0 {
								home = node // first touch would land here
							}
							if home == node {
								local += uint64(tx.Bytes)
							}
						}
					}
				}
			}
		}
	}
	if total == 0 {
		t.Fatal("no traffic generated")
	}
	return float64(local) / float64(total)
}

func prepare(t *testing.T, w *kir.Workload, pol rt.Policy) *rt.Plan {
	t.Helper()
	cfg := arch.DefaultHierarchical()
	plan, err := rt.Prepare(w, &cfg, pol)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// TestLADMNeverLosesLocality: across all 27 workloads, LADM's node-local
// traffic fraction is at least the round-robin baseline's — the minimum
// bar for a locality-management system.
func TestLADMNeverLosesLocality(t *testing.T) {
	for _, spec := range kernels.All(scale) {
		spec := spec
		t.Run(spec.W.Name, func(t *testing.T) {
			base := localFraction(t, spec.W, prepare(t, spec.W, rt.BaselineRR()))
			ladm := localFraction(t, spec.W, prepare(t, spec.W, rt.LADM()))
			if ladm+0.02 < base {
				t.Errorf("LADM local fraction %.3f below baseline %.3f", ladm, base)
			}
		})
	}
}

// TestStridedWorkloadsFullyLocal: the stride-aware co-placement must keep
// essentially all classified strided traffic on-node (Table I row
// "Threadblock-stride aware"). Strides that are exact multiples of
// nodes x pageSize co-place perfectly; ragged strides leak at page
// boundaries, so each workload is tested at a scale where its stride is
// page-clean (vecadd/scalarprod/reduction-k6 are clean at scale 16; blk
// needs a threadblock count divisible by 128, i.e. scale 5; histo-final's
// odd 1530-block grid is never perfectly clean and is held to 80%).
func TestStridedWorkloadsFullyLocal(t *testing.T) {
	cases := []struct {
		name  string
		scale int
		min   float64
	}{
		{"vecadd", scale, 0.95},
		{"scalarprod", scale, 0.95},
		{"reduction-k6", scale, 0.95},
		{"blk", 5, 0.95},
		{"histo-final", 8, 0.80},
	}
	for _, tc := range cases {
		spec, err := kernels.ByName(tc.name, tc.scale)
		if err != nil {
			t.Fatal(err)
		}
		f := localFraction(t, spec.W, prepare(t, spec.W, rt.LADM()))
		if f < tc.min {
			t.Errorf("%s: LADM local fraction %.3f, want >= %.2f", tc.name, f, tc.min)
		}
	}
}

// TestStencilContiguity: row-contiguous binding leaves only halo rows
// remote. The grids need at least a few rows per node for the halo share
// to be small, so the stencils run at scale 8.
func TestStencilContiguity(t *testing.T) {
	for _, name := range []string{"srad", "hs"} {
		spec, err := kernels.ByName(name, 8)
		if err != nil {
			t.Fatal(err)
		}
		ladm := localFraction(t, spec.W, prepare(t, spec.W, rt.LADM()))
		hcoda := localFraction(t, spec.W, prepare(t, spec.W, rt.HCODA()))
		if ladm < 0.85 {
			t.Errorf("%s: stencil local fraction %.3f, want >= 0.85", name, ladm)
		}
		if ladm <= hcoda {
			t.Errorf("%s: LADM (%.3f) should beat H-CODA (%.3f) on adjacency", name, ladm, hcoda)
		}
	}
}

// TestRowColBindingLocality: the RCL workloads' dominant shared structure
// stays substantially local under binding schedulers. Column-based
// placement needs data rows wide enough to split across the four GPUs at
// page granularity (>= 16 KB), so fwt-k2 runs at scale 4; histo-main's
// image rows are narrower than that even at paper size — its win comes
// from L2 locality, not placement — so it is exercised by Figure 9
// instead.
func TestRowColBindingLocality(t *testing.T) {
	cases := []struct {
		name  string
		scale int
	}{
		{"sq-gemm", scale}, {"conv", scale}, {"tra", scale}, {"fwt-k2", 4},
	}
	for _, tc := range cases {
		spec, err := kernels.ByName(tc.name, tc.scale)
		if err != nil {
			t.Fatal(err)
		}
		ladm := localFraction(t, spec.W, prepare(t, spec.W, rt.LADM()))
		base := localFraction(t, spec.W, prepare(t, spec.W, rt.BaselineRR()))
		if ladm <= base {
			t.Errorf("%s: LADM local %.3f not above baseline %.3f", tc.name, ladm, base)
		}
	}
}

// TestPlanDeterminism: preparing the same workload twice yields identical
// page tables and schedules.
func TestPlanDeterminism(t *testing.T) {
	spec, err := kernels.ByName("sq-gemm", scale)
	if err != nil {
		t.Fatal(err)
	}
	a := prepare(t, spec.W, rt.LADM())
	b := prepare(t, spec.W, rt.LADM())
	for _, alloc := range a.Space.Allocs() {
		other := b.Space.Lookup(alloc.ID)
		for off := uint64(0); off < alloc.Size; off += a.Cfg.PageBytes {
			if a.Space.Home(alloc.Base+off) != b.Space.Home(other.Base+off) {
				t.Fatalf("placement of %s differs at offset %d", alloc.ID, off)
			}
		}
	}
	qa, qb := a.Launches[0].Assignment.Queues, b.Launches[0].Assignment.Queues
	for n := range qa {
		if len(qa[n]) != len(qb[n]) {
			t.Fatalf("queue %d length differs", n)
		}
		for i := range qa[n] {
			if qa[n][i] != qb[n][i] {
				t.Fatalf("queue %d order differs", n)
			}
		}
	}
}
