// Package kir defines the kernel intermediate representation shared by the
// static analyzer, the trace generator, and the timing engine.
//
// A kernel is modeled the way the paper's compiler pass sees it (Figure 6):
// a grid/block geometry, an outer loop with induction variable m, and a set
// of global-memory accesses whose element indices are symbolic expressions
// over the prime variables. The same expression is classified statically by
// internal/compiler and evaluated per thread by internal/trace, so analysis
// and trace are two views of one definition — there is no separate
// "workload description" that could drift from what the analyzer saw.
package kir

import (
	"fmt"
	"reflect"

	"ladm/internal/symbolic"
)

// Dim3 is a CUDA-style 3-component dimension.
type Dim3 struct{ X, Y, Z int }

// Dim2 builds a 2D dimension (Z=1).
func Dim2(x, y int) Dim3 { return Dim3{X: x, Y: y, Z: 1} }

// Dim1 builds a 1D dimension.
func Dim1(x int) Dim3 { return Dim3{X: x, Y: 1, Z: 1} }

// Count returns the number of elements the dimension spans.
func (d Dim3) Count() int {
	x, y, z := d.X, d.Y, d.Z
	if x < 1 {
		x = 1
	}
	if y < 1 {
		y = 1
	}
	if z < 1 {
		z = 1
	}
	return x * y * z
}

func (d Dim3) String() string {
	if d.Z > 1 {
		return fmt.Sprintf("(%d,%d,%d)", d.X, d.Y, d.Z)
	}
	return fmt.Sprintf("(%d,%d)", d.X, d.Y)
}

// AccessMode distinguishes loads from stores.
type AccessMode int

const (
	// Load is a global read.
	Load AccessMode = iota
	// Store is a global write.
	Store
)

func (m AccessMode) String() string {
	if m == Store {
		return "store"
	}
	return "load"
}

// Phase places an access relative to the kernel's outer loop.
type Phase int

const (
	// InLoop accesses execute on every iteration of the outer loop.
	InLoop Phase = iota
	// PreLoop accesses execute once before the loop (m fixed at 0).
	PreLoop
	// PostLoop accesses execute once after the loop (m fixed at Iters-1).
	PostLoop
)

func (p Phase) String() string {
	switch p {
	case PreLoop:
		return "pre"
	case PostLoop:
		return "post"
	default:
		return "loop"
	}
}

// Access is one global-memory access site of a kernel.
type Access struct {
	// Array names the data structure (the kernel argument / allocation ID).
	Array string
	// Index is the element index expression over prime variables. Lets of
	// the enclosing kernel are substituted before analysis or evaluation.
	Index symbolic.Expr
	// ElemSize is the accessed element's size in bytes.
	ElemSize int
	// Mode distinguishes loads from stores.
	Mode AccessMode
	// Phase places the access relative to the outer loop.
	Phase Phase
	// Pred, when non-nil, predicates the access: a thread performs it only
	// when Pred evaluates > 0 (models `if` guards and per-thread trip
	// counts of irregular kernels).
	Pred symbolic.Expr
	// Weight is the relative execution frequency used when merging
	// classifications per data structure (default 1).
	Weight int
}

// EffWeight returns Weight with the default applied.
func (a *Access) EffWeight() int {
	if a.Weight <= 0 {
		return 1
	}
	return a.Weight
}

// Kernel is one GPU kernel.
type Kernel struct {
	Name  string
	Grid  Dim3
	Block Dim3
	// Lets bind launch parameters to expressions in prime variables — the
	// backward substitution of the paper's analysis (e.g. WIDTH ->
	// gDim.x*bDim.x, TILE -> 16).
	Lets map[string]symbolic.Expr
	// Params bind remaining parameters to launch-time integers for trace
	// generation (the analyzer treats them as loop-invariant symbols).
	Params map[string]int64
	// Iters is the trip count of the outer loop (1 for loop-free kernels).
	Iters int
	// ItersForTB, when non-nil, bounds the trip count per threadblock
	// (linear id) — irregular kernels stop a block once every resident
	// thread's predicate is exhausted. The effective count is
	// min(Iters, ItersForTB(tb)), at least 1.
	ItersForTB func(tb int) int
	// ALUPerIter approximates non-memory warp instructions per iteration
	// (used for MPKI denominators and compute delay).
	ALUPerIter int
	// ComputeCyclesPerIter is the modelled compute time separating memory
	// phases of consecutive iterations.
	ComputeCyclesPerIter int
	// Accesses are the kernel's global-memory access sites.
	Accesses []Access
}

// Is2D reports whether the kernel has a two-dimensional grid, the
// condition under which Algorithm 1 searches for row/column sharing.
func (k *Kernel) Is2D() bool { return k.Grid.Y > 1 }

// WarpsPerTB returns the number of warps per threadblock.
func (k *Kernel) WarpsPerTB(warpSize int) int {
	n := (k.Block.Count() + warpSize - 1) / warpSize
	if n < 1 {
		n = 1
	}
	return n
}

// EffIters returns the trip count with the loop-free default applied.
func (k *Kernel) EffIters() int {
	if k.Iters < 1 {
		return 1
	}
	return k.Iters
}

// EffItersFor returns the trip count for one threadblock, honouring
// ItersForTB.
func (k *Kernel) EffItersFor(tb int) int {
	n := k.EffIters()
	if k.ItersForTB != nil {
		if v := k.ItersForTB(tb); v < n {
			n = v
		}
	}
	if n < 1 {
		return 1
	}
	return n
}

// SubstitutedIndex returns access i's index with the kernel's Lets applied.
func (k *Kernel) SubstitutedIndex(i int) symbolic.Expr {
	return symbolic.Substitute(k.Accesses[i].Index, k.Lets)
}

// SubstitutedPred returns access i's predicate with Lets applied, or nil.
func (k *Kernel) SubstitutedPred(i int) symbolic.Expr {
	if k.Accesses[i].Pred == nil {
		return nil
	}
	return symbolic.Substitute(k.Accesses[i].Pred, k.Lets)
}

// BaseEnv returns an evaluation environment with the kernel's geometry and
// parameters bound. Callers fill Tid/Bid/M per thread.
func (k *Kernel) BaseEnv() symbolic.Env {
	return symbolic.Env{
		BDim:   [3]int64{int64(k.Block.X), int64(k.Block.Y), int64(k.Block.Z)},
		GDim:   [3]int64{int64(k.Grid.X), int64(k.Grid.Y), int64(k.Grid.Z)},
		Params: k.Params,
	}
}

// Validate checks structural invariants of the kernel definition.
func (k *Kernel) Validate() error {
	if k.Name == "" {
		return fmt.Errorf("kir: kernel without a name")
	}
	if k.Grid.X < 1 || k.Block.X < 1 {
		return fmt.Errorf("kir: kernel %q has empty grid or block", k.Name)
	}
	if k.Block.Count() > 1024 {
		return fmt.Errorf("kir: kernel %q block %v exceeds 1024 threads", k.Name, k.Block)
	}
	if len(k.Accesses) == 0 {
		return fmt.Errorf("kir: kernel %q has no memory accesses", k.Name)
	}
	for i := range k.Accesses {
		a := &k.Accesses[i]
		if a.Array == "" {
			return fmt.Errorf("kir: kernel %q access %d has no array", k.Name, i)
		}
		if a.Index == nil {
			return fmt.Errorf("kir: kernel %q access %d has no index", k.Name, i)
		}
		if a.ElemSize <= 0 {
			return fmt.Errorf("kir: kernel %q access %d has bad element size", k.Name, i)
		}
	}
	return nil
}

// AllocSpec declares one managed allocation of a workload.
type AllocSpec struct {
	ID       string
	Bytes    uint64
	ElemSize int
}

// Launch is one kernel invocation within a workload.
type Launch struct {
	Kernel *Kernel
	// Times repeats the launch (default 1); models iterative kernels.
	Times int
}

// EffTimes returns Times with the default applied.
func (l Launch) EffTimes() int {
	if l.Times < 1 {
		return 1
	}
	return l.Times
}

// Workload is a complete benchmark: allocations, kernel launches, and the
// synthetic data tables backing Indirect index components.
type Workload struct {
	Name  string
	Suite string

	Allocs   []AllocSpec
	Launches []Launch

	// Tables backs symbolic.Indirect nodes: table name -> element values.
	// Out-of-range lookups clamp (see Resolver).
	Tables map[string][]int64
}

// Resolver returns an Indirect resolver over the workload's tables.
// Missing tables resolve to zero; indices clamp to the table bounds so a
// degenerate synthetic input can never crash trace generation.
func (w *Workload) Resolver() func(table string, idx int64) int64 {
	return func(table string, idx int64) int64 {
		t := w.Tables[table]
		if len(t) == 0 {
			return 0
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= int64(len(t)) {
			idx = int64(len(t)) - 1
		}
		return t[idx]
	}
}

// Alloc returns the spec with the given id, or nil.
func (w *Workload) Alloc(id string) *AllocSpec {
	for i := range w.Allocs {
		if w.Allocs[i].ID == id {
			return &w.Allocs[i]
		}
	}
	return nil
}

// Equal reports whether two workloads describe the same benchmark — the
// same allocations, launches, kernels, symbolic accesses and backing
// tables. It exists so a sweep job can be safely identified with a
// registry-built workload (and thus with a cacheable content key): a
// mutated copy (changed launch repetitions, patched tables, resized
// grids) compares unequal and falls off the cached path.
//
// Kernel definitions are pure data except ItersForTB, a function;
// functions have no useful equality, so it is compared pointwise over
// its whole finite domain (the kernel's grid). Two kernels that agree
// everywhere on that domain behave identically in the simulator.
func Equal(a, b *Workload) bool {
	if a == b {
		return true
	}
	if a == nil || b == nil {
		return false
	}
	if a.Name != b.Name || a.Suite != b.Suite {
		return false
	}
	if !reflect.DeepEqual(a.Allocs, b.Allocs) || !reflect.DeepEqual(a.Tables, b.Tables) {
		return false
	}
	if len(a.Launches) != len(b.Launches) {
		return false
	}
	for i := range a.Launches {
		if a.Launches[i].Times != b.Launches[i].Times {
			return false
		}
		if !kernelEqual(a.Launches[i].Kernel, b.Launches[i].Kernel) {
			return false
		}
	}
	return true
}

func kernelEqual(a, b *Kernel) bool {
	if a == b {
		return true
	}
	if a == nil || b == nil {
		return false
	}
	if a.Name != b.Name || a.Grid != b.Grid || a.Block != b.Block ||
		a.Iters != b.Iters || a.ALUPerIter != b.ALUPerIter ||
		a.ComputeCyclesPerIter != b.ComputeCyclesPerIter {
		return false
	}
	if !reflect.DeepEqual(a.Lets, b.Lets) || !reflect.DeepEqual(a.Params, b.Params) {
		return false
	}
	if !reflect.DeepEqual(a.Accesses, b.Accesses) {
		return false
	}
	if (a.ItersForTB == nil) != (b.ItersForTB == nil) {
		return false
	}
	if a.ItersForTB != nil {
		for tb, n := 0, a.Grid.Count(); tb < n; tb++ {
			if a.ItersForTB(tb) != b.ItersForTB(tb) {
				return false
			}
		}
	}
	return true
}

// TotalBytes returns the workload's total allocation footprint.
func (w *Workload) TotalBytes() uint64 {
	var total uint64
	for i := range w.Allocs {
		total += w.Allocs[i].Bytes
	}
	return total
}

// TotalTBs returns the number of threadblocks launched across all kernel
// invocations.
func (w *Workload) TotalTBs() int {
	total := 0
	for _, l := range w.Launches {
		total += l.Kernel.Grid.Count() * l.EffTimes()
	}
	return total
}

// Validate checks the workload definition: kernels are valid, every
// accessed array has an allocation, and element sizes are consistent.
func (w *Workload) Validate() error {
	if w.Name == "" {
		return fmt.Errorf("kir: workload without a name")
	}
	if len(w.Launches) == 0 {
		return fmt.Errorf("kir: workload %q launches no kernels", w.Name)
	}
	ids := make(map[string]*AllocSpec, len(w.Allocs))
	for i := range w.Allocs {
		a := &w.Allocs[i]
		if a.Bytes == 0 || a.ElemSize <= 0 {
			return fmt.Errorf("kir: workload %q alloc %q has bad size", w.Name, a.ID)
		}
		if _, dup := ids[a.ID]; dup {
			return fmt.Errorf("kir: workload %q duplicates alloc %q", w.Name, a.ID)
		}
		ids[a.ID] = a
	}
	for _, l := range w.Launches {
		if err := l.Kernel.Validate(); err != nil {
			return fmt.Errorf("workload %q: %w", w.Name, err)
		}
		for i := range l.Kernel.Accesses {
			acc := &l.Kernel.Accesses[i]
			spec := ids[acc.Array]
			if spec == nil {
				return fmt.Errorf("kir: workload %q kernel %q accesses undeclared array %q",
					w.Name, l.Kernel.Name, acc.Array)
			}
			if spec.ElemSize != acc.ElemSize {
				return fmt.Errorf("kir: workload %q array %q: access elem size %d != alloc elem size %d",
					w.Name, acc.Array, acc.ElemSize, spec.ElemSize)
			}
		}
	}
	return nil
}
