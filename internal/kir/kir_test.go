package kir

import (
	"testing"

	sym "ladm/internal/symbolic"
)

// vecAddKernel builds a minimal valid kernel for reuse across tests.
func vecAddKernel() *Kernel {
	gid := sym.Sum(sym.Prod(sym.Bx, sym.BDx), sym.Tx)
	return &Kernel{
		Name:  "vecadd",
		Grid:  Dim1(64),
		Block: Dim1(128),
		Iters: 1,
		Accesses: []Access{
			{Array: "A", Index: gid, ElemSize: 4, Mode: Load},
			{Array: "B", Index: gid, ElemSize: 4, Mode: Load},
			{Array: "C", Index: gid, ElemSize: 4, Mode: Store},
		},
	}
}

func vecAddWorkload() *Workload {
	return &Workload{
		Name:  "vecadd",
		Suite: "test",
		Allocs: []AllocSpec{
			{ID: "A", Bytes: 64 * 128 * 4, ElemSize: 4},
			{ID: "B", Bytes: 64 * 128 * 4, ElemSize: 4},
			{ID: "C", Bytes: 64 * 128 * 4, ElemSize: 4},
		},
		Launches: []Launch{{Kernel: vecAddKernel()}},
	}
}

func TestDim3(t *testing.T) {
	if got := Dim2(16, 8).Count(); got != 128 {
		t.Errorf("Dim2 count = %d", got)
	}
	if got := Dim1(256).Count(); got != 256 {
		t.Errorf("Dim1 count = %d", got)
	}
	if got := (Dim3{X: 2, Y: 0, Z: 0}).Count(); got != 2 {
		t.Errorf("degenerate dims should clamp, got %d", got)
	}
	if got := Dim2(16, 8).String(); got != "(16,8)" {
		t.Errorf("Dim3.String = %q", got)
	}
	if got := (Dim3{X: 2, Y: 3, Z: 4}).String(); got != "(2,3,4)" {
		t.Errorf("3D String = %q", got)
	}
}

func TestKernelBasics(t *testing.T) {
	k := vecAddKernel()
	if err := k.Validate(); err != nil {
		t.Fatalf("valid kernel rejected: %v", err)
	}
	if k.Is2D() {
		t.Error("1D kernel reported as 2D")
	}
	if got := k.WarpsPerTB(32); got != 4 {
		t.Errorf("WarpsPerTB = %d, want 4", got)
	}
	if got := k.EffIters(); got != 1 {
		t.Errorf("EffIters = %d", got)
	}
	k.Iters = 0
	if got := k.EffIters(); got != 1 {
		t.Errorf("EffIters default = %d", got)
	}
	env := k.BaseEnv()
	if env.BDim[0] != 128 || env.GDim[0] != 64 {
		t.Errorf("BaseEnv dims wrong: %+v", env)
	}
}

func TestWarpsPerTBRoundsUp(t *testing.T) {
	k := &Kernel{Block: Dim1(33)}
	if got := k.WarpsPerTB(32); got != 2 {
		t.Errorf("WarpsPerTB(33 threads) = %d, want 2", got)
	}
	k = &Kernel{Block: Dim1(1)}
	if got := k.WarpsPerTB(32); got != 1 {
		t.Errorf("WarpsPerTB(1 thread) = %d, want 1", got)
	}
}

func TestSubstitutedIndex(t *testing.T) {
	k := vecAddKernel()
	k.Lets = map[string]sym.Expr{"W": sym.Prod(sym.GDx, sym.BDx)}
	k.Accesses[0].Index = sym.Sum(sym.Prod(sym.By, sym.P("W")), sym.Tx)
	idx := k.SubstitutedIndex(0)
	_, params := sym.Vars(idx)
	if len(params) != 0 {
		t.Errorf("Lets not substituted: %v", params)
	}
	if k.SubstitutedPred(0) != nil {
		t.Error("nil predicate should stay nil")
	}
	k.Accesses[0].Pred = sym.Sum(sym.P("W"), sym.Neg{X: sym.Tx})
	if k.SubstitutedPred(0) == nil {
		t.Error("predicate lost")
	}
}

func TestKernelValidateErrors(t *testing.T) {
	cases := map[string]func(k *Kernel){
		"no name":      func(k *Kernel) { k.Name = "" },
		"empty grid":   func(k *Kernel) { k.Grid = Dim3{} },
		"huge block":   func(k *Kernel) { k.Block = Dim2(64, 64) },
		"no accesses":  func(k *Kernel) { k.Accesses = nil },
		"no array":     func(k *Kernel) { k.Accesses[0].Array = "" },
		"no index":     func(k *Kernel) { k.Accesses[0].Index = nil },
		"bad elemsize": func(k *Kernel) { k.Accesses[0].ElemSize = 0 },
	}
	for name, mutate := range cases {
		k := vecAddKernel()
		mutate(k)
		if err := k.Validate(); err == nil {
			t.Errorf("%s: expected validation error", name)
		}
	}
}

func TestWorkloadValidate(t *testing.T) {
	w := vecAddWorkload()
	if err := w.Validate(); err != nil {
		t.Fatalf("valid workload rejected: %v", err)
	}
	if got := w.TotalBytes(); got != 3*64*128*4 {
		t.Errorf("TotalBytes = %d", got)
	}
	if got := w.TotalTBs(); got != 64 {
		t.Errorf("TotalTBs = %d", got)
	}
	if w.Alloc("B") == nil || w.Alloc("nope") != nil {
		t.Error("Alloc lookup broken")
	}
}

func TestWorkloadValidateErrors(t *testing.T) {
	cases := map[string]func(w *Workload){
		"no name":        func(w *Workload) { w.Name = "" },
		"no launches":    func(w *Workload) { w.Launches = nil },
		"zero byte":      func(w *Workload) { w.Allocs[0].Bytes = 0 },
		"dup alloc":      func(w *Workload) { w.Allocs = append(w.Allocs, AllocSpec{ID: "A", Bytes: 4, ElemSize: 4}) },
		"missing alloc":  func(w *Workload) { w.Allocs = w.Allocs[:2] },
		"elem mismatch":  func(w *Workload) { w.Allocs[0].ElemSize = 8 },
		"invalid kernel": func(w *Workload) { w.Launches[0].Kernel.Name = "" },
	}
	for name, mutate := range cases {
		w := vecAddWorkload()
		mutate(w)
		if err := w.Validate(); err == nil {
			t.Errorf("%s: expected validation error", name)
		}
	}
}

func TestLaunchTimes(t *testing.T) {
	l := Launch{Kernel: vecAddKernel()}
	if l.EffTimes() != 1 {
		t.Error("default Times should be 1")
	}
	l.Times = 5
	if l.EffTimes() != 5 {
		t.Error("explicit Times lost")
	}
	w := vecAddWorkload()
	w.Launches[0].Times = 3
	if got := w.TotalTBs(); got != 3*64 {
		t.Errorf("TotalTBs with repeats = %d", got)
	}
}

func TestResolver(t *testing.T) {
	w := vecAddWorkload()
	w.Tables = map[string][]int64{"deg": {5, 7, 9}}
	r := w.Resolver()
	if got := r("deg", 1); got != 7 {
		t.Errorf("resolver mid = %d", got)
	}
	if got := r("deg", -4); got != 5 {
		t.Errorf("resolver clamps low = %d", got)
	}
	if got := r("deg", 99); got != 9 {
		t.Errorf("resolver clamps high = %d", got)
	}
	if got := r("absent", 0); got != 0 {
		t.Errorf("missing table = %d, want 0", got)
	}
}

func TestAccessDefaults(t *testing.T) {
	a := Access{}
	if a.EffWeight() != 1 {
		t.Error("default weight should be 1")
	}
	a.Weight = 4
	if a.EffWeight() != 4 {
		t.Error("explicit weight lost")
	}
	if Load.String() != "load" || Store.String() != "store" {
		t.Error("AccessMode strings")
	}
	if InLoop.String() != "loop" || PreLoop.String() != "pre" || PostLoop.String() != "post" {
		t.Error("Phase strings")
	}
}

func TestEffItersFor(t *testing.T) {
	k := vecAddKernel()
	k.Iters = 10
	if got := k.EffItersFor(5); got != 10 {
		t.Errorf("no ItersForTB: %d", got)
	}
	k.ItersForTB = func(tb int) int { return tb }
	if got := k.EffItersFor(3); got != 3 {
		t.Errorf("per-TB bound: %d", got)
	}
	if got := k.EffItersFor(99); got != 10 {
		t.Errorf("kernel bound: %d", got)
	}
	if got := k.EffItersFor(0); got != 1 {
		t.Errorf("floor of 1: %d", got)
	}
}

func TestEqual(t *testing.T) {
	if !Equal(vecAddWorkload(), vecAddWorkload()) {
		t.Fatal("identical builds compare unequal")
	}
	if Equal(vecAddWorkload(), nil) || !Equal(nil, nil) {
		t.Error("nil handling")
	}

	// Each single-field mutation must break equality.
	mutations := []struct {
		name string
		mut  func(w *Workload)
	}{
		{"name", func(w *Workload) { w.Name = "other" }},
		{"times", func(w *Workload) { w.Launches[0].Times = 3 }},
		{"grid", func(w *Workload) { w.Launches[0].Kernel.Grid = Dim1(32) }},
		{"iters", func(w *Workload) { w.Launches[0].Kernel.Iters = 7 }},
		{"alloc", func(w *Workload) { w.Allocs[0].Bytes *= 2 }},
		{"access", func(w *Workload) { w.Launches[0].Kernel.Accesses[0].ElemSize = 8 }},
		{"extra launch", func(w *Workload) { w.Launches = append(w.Launches, Launch{Kernel: vecAddKernel()}) }},
	}
	for _, m := range mutations {
		w := vecAddWorkload()
		m.mut(w)
		if Equal(vecAddWorkload(), w) {
			t.Errorf("%s mutation not detected", m.name)
		}
	}

	// ItersForTB is a func field: DeepEqual cannot compare it, Equal
	// compares it pointwise over the grid domain.
	a, b := vecAddWorkload(), vecAddWorkload()
	a.Launches[0].Kernel.ItersForTB = func(tb int) int { return tb + 1 }
	b.Launches[0].Kernel.ItersForTB = func(tb int) int { return tb + 1 }
	if !Equal(a, b) {
		t.Error("pointwise-identical ItersForTB compared unequal")
	}
	b.Launches[0].Kernel.ItersForTB = func(tb int) int { return tb + 2 }
	if Equal(a, b) {
		t.Error("diverging ItersForTB not detected")
	}
	b.Launches[0].Kernel.ItersForTB = nil
	if Equal(a, b) || Equal(b, a) {
		t.Error("nil vs non-nil ItersForTB not detected")
	}
}
